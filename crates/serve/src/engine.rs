//! The serving engine: a swappable matcher behind a sharded result
//! cache of per-protocol pre-rendered responses.
//!
//! [`Engine`] is the layer every network front end calls into — it is
//! transport-agnostic, which is what lets one engine back a line
//! server and an HTTP server at once. It owns
//!
//! - the current [`EntityMatcher`] as an `Arc` behind an `RwLock` —
//!   readers clone the handle (no contention beyond the lock word),
//!   and [`Engine::swap_matcher`] implements the **rebuild-and-swap**
//!   deployment story for the immutable compiled dictionary: compile a
//!   new dictionary off-line, swap the `Arc`, and the old one dies with
//!   its last in-flight batch;
//! - a [`ShardedCache`] of `normalized query →` [`Rendered`]: the
//!   spans *and* one pre-serialized response per wire format — the
//!   line-protocol `OK …` line ([`crate::proto::format_spans`]) and
//!   the complete HTTP/1.1 200 response ([`crate::http::spans_json`])
//!   — all rendered once, on the miss that filled the entry. A
//!   protocol-level cache hit is therefore a pure lookup-and-write for
//!   *every* transport: no serializer walk, no `String` allocation,
//!   just an `Arc` clone handed to the connection writer. The cache is
//!   keyed *after* normalization, so "Indy 4", "indy 4" and "INDY-4"
//!   share one entry, and a hit skips normalization's allocation too
//!   (the `Cow` fast path) on the segmenter side.
//!
//! Cached and uncached paths return byte-identical results: the cache
//! stores exactly what the matcher produced (and the renderings
//! serialized from it), and generation-checked inserts (see
//! [`ShardedCache::insert_at`]) make it impossible for a result
//! computed against a retired dictionary to survive a swap.

use crate::cache::{CacheStats, ShardedCache};
use crate::http;
use crate::metrics::{as_us, ServeMetrics};
use crate::proto::format_spans;
use crate::protocol::Wire;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;
use websyn_core::{EntityMatcher, MatchScratch, MatchSpan, SegmentRequest};
use websyn_text::normalized;

/// One cached resolution: the spans plus the pre-rendered response in
/// every wire format the server speaks, produced together on the
/// filling miss. All fields are shared handles — cloning a `Rendered`
/// costs three reference-count bumps.
#[derive(Debug, Clone)]
pub struct Rendered {
    /// The segmentation result itself.
    pub spans: Arc<Vec<MatchSpan>>,
    /// The line-protocol response line (no terminator);
    /// see [`crate::proto::format_spans`].
    pub line: Arc<str>,
    /// The complete HTTP/1.1 200 response — status line, headers and
    /// JSON body; see [`crate::http::spans_json`].
    pub http: Arc<str>,
}

impl Rendered {
    /// The pre-rendered response for `wire` — what a connection writer
    /// puts on the socket (plus the protocol's terminator).
    pub fn for_wire(&self, wire: Wire) -> Arc<str> {
        match wire {
            Wire::Line => Arc::clone(&self.line),
            Wire::Http => Arc::clone(&self.http),
        }
    }
}

/// Cache sizing for an [`Engine`]. [`Engine::builder`] is the
/// ergonomic way to set these; the struct remains public so sizing can
/// be computed, stored and passed around as plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Number of independently locked cache shards. Size this at or
    /// above the worker count so concurrent hits never serialize.
    pub cache_shards: usize,
    /// Total cached results across shards. Zipfian logs concentrate
    /// mass in the head, so a few thousand entries absorb most
    /// traffic; see the README's cache-sizing note.
    pub cache_capacity: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            cache_shards: 8,
            cache_capacity: 4096,
        }
    }
}

/// Builder for [`Engine`] — validated knobs over positional arguments.
///
/// Starts from [`EngineConfig::default`]; [`EngineBuilder::build`]
/// clamps every knob into its valid range (shards ≥ 1, capacity ≥
/// shards so no shard is created empty) rather than failing, so a
/// config assembled from untrusted flags still produces a working
/// engine.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use websyn_common::EntityId;
/// use websyn_core::EntityMatcher;
/// use websyn_serve::Engine;
///
/// let matcher = Arc::new(EntityMatcher::from_pairs(vec![("indy 4", EntityId::new(7))]));
/// let engine = Engine::builder(matcher)
///     .cache_shards(4)
///     .cache_capacity(1024)
///     .build();
/// assert_eq!(engine.resolve("indy 4").len(), 1);
/// ```
#[derive(Debug)]
pub struct EngineBuilder {
    matcher: Arc<EntityMatcher>,
    config: EngineConfig,
}

impl EngineBuilder {
    /// Number of independently locked cache shards (clamped to ≥ 1 at
    /// build time).
    pub fn cache_shards(mut self, shards: usize) -> Self {
        self.config.cache_shards = shards;
        self
    }

    /// Total cached results across shards (clamped to ≥ `cache_shards`
    /// at build time, so every shard holds at least one entry).
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.config.cache_capacity = capacity;
        self
    }

    /// Applies the whole sizing struct at once.
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Validates the knobs (clamping them into range) and builds the
    /// engine.
    pub fn build(self) -> Engine {
        let shards = self.config.cache_shards.max(1);
        let capacity = self.config.cache_capacity.max(shards);
        Engine::new(
            self.matcher,
            EngineConfig {
                cache_shards: shards,
                cache_capacity: capacity,
            },
        )
    }
}

/// The engine-side slice of one request's stage breakdown, filled by
/// [`Engine::resolve_rendered_batch_timed`]. On a result-cache hit only
/// `cache_us` is nonzero — the segment and render stages never ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTiming {
    /// Normalize + result-cache probe, microseconds.
    pub cache_us: u64,
    /// Matcher segmentation, microseconds (0 on a hit).
    pub segment_us: u64,
    /// Response serialization + cache fill, microseconds (0 on a hit).
    pub render_us: u64,
}

/// A matcher + result cache, shared by every connection and worker —
/// and by every protocol front end serving the same dictionary.
#[derive(Debug)]
pub struct Engine {
    matcher: RwLock<Arc<EntityMatcher>>,
    cache: ShardedCache<Rendered>,
    swaps: AtomicU64,
    metrics: ServeMetrics,
}

impl Engine {
    /// Starts building an engine around `matcher` with validated,
    /// defaulted knobs — the primary constructor.
    pub fn builder(matcher: Arc<EntityMatcher>) -> EngineBuilder {
        EngineBuilder {
            matcher,
            config: EngineConfig::default(),
        }
    }

    /// Creates an engine serving `matcher` with the given cache
    /// sizing. Prefer [`Engine::builder`]; this constructor trusts
    /// `config` as-is (the cache still clamps internally).
    pub fn new(matcher: Arc<EntityMatcher>, config: EngineConfig) -> Self {
        Self {
            matcher: RwLock::new(matcher),
            cache: ShardedCache::new(config.cache_shards, config.cache_capacity),
            swaps: AtomicU64::new(0),
            metrics: ServeMetrics::new(),
        }
    }

    /// The engine's observability surface: stage histograms, the
    /// slow-query ring, uptime. Shared by every server front end that
    /// serves this engine.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Whole seconds since this engine was built.
    pub fn uptime_seconds(&self) -> u64 {
        self.metrics.uptime_seconds()
    }

    /// The currently served matcher.
    pub fn matcher(&self) -> Arc<EntityMatcher> {
        Arc::clone(&self.matcher.read().expect("matcher lock poisoned"))
    }

    /// An atomic snapshot of (matcher, cache generation): any
    /// `insert_at` tagged with this generation is guaranteed to carry a
    /// result computed by this matcher.
    fn snapshot(&self) -> (Arc<EntityMatcher>, u64) {
        let guard = self.matcher.read().expect("matcher lock poisoned");
        let generation = self.cache.generation();
        (Arc::clone(&guard), generation)
    }

    /// Replaces the served matcher — the rebuild-and-swap deployment
    /// step. The result cache is invalidated *inside* the write
    /// critical section (generation bump, then sweep), so no request
    /// can observe new-dictionary cache state with the old matcher or
    /// vice versa; workers mid-batch keep their old `Arc` and finish
    /// against the retired dictionary, but their late cache inserts are
    /// rejected by the generation check.
    pub fn swap_matcher(&self, new: Arc<EntityMatcher>) {
        let mut guard = self.matcher.write().expect("matcher lock poisoned");
        self.cache.invalidate();
        *guard = new;
        self.swaps.fetch_add(1, Ordering::AcqRel);
    }

    /// Number of completed [`Engine::swap_matcher`] calls.
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Acquire)
    }

    /// Resolves one raw query: normalize, probe the cache, segment on a
    /// miss. Byte-identical to `matcher().segment(query)`.
    pub fn resolve(&self, query: &str) -> Arc<Vec<MatchSpan>> {
        self.resolve_batch(std::slice::from_ref(&query)).remove(0)
    }

    /// Resolves one raw query to its serialized line-protocol response
    /// (see [`crate::proto::format_spans`]): on a cache hit this is a
    /// pure lookup — the line was rendered when the entry was filled.
    pub fn resolve_line(&self, query: &str) -> Arc<str> {
        self.resolve_rendered_batch(std::slice::from_ref(&query))
            .remove(0)
            .line
    }

    /// Resolves a batch of raw queries in order. Cache misses within
    /// the batch share one [`MatchScratch`], so a mention that recurs
    /// across the batch pays for fuzzy verification once even before it
    /// reaches the cache.
    pub fn resolve_batch<S: AsRef<str>>(&self, queries: &[S]) -> Vec<Arc<Vec<MatchSpan>>> {
        self.resolve_rendered_batch(queries)
            .into_iter()
            .map(|r| r.spans)
            .collect()
    }

    /// [`Engine::resolve_batch`], returning the serialized
    /// line-protocol response of each query.
    pub fn resolve_line_batch<S: AsRef<str>>(&self, queries: &[S]) -> Vec<Arc<str>> {
        self.resolve_rendered_batch(queries)
            .into_iter()
            .map(|r| r.line)
            .collect()
    }

    /// The shared resolution core — the worker-loop entry point: every
    /// query comes back with its spans and every per-protocol
    /// rendering, so a hit costs no serialization on any transport.
    pub fn resolve_rendered_batch<S: AsRef<str>>(&self, queries: &[S]) -> Vec<Rendered> {
        self.resolve_inner(queries, None)
    }

    /// [`Engine::resolve_rendered_batch`], additionally recording one
    /// [`StageTiming`] per query into `timings` — the per-request
    /// engine-stage breakdown the slow-query trace records. `timings`
    /// is cleared first, so on return it holds exactly one entry per
    /// query, index-aligned with the returned renderings; callers may
    /// reuse the Vec across batches.
    pub fn resolve_rendered_batch_timed<S: AsRef<str>>(
        &self,
        queries: &[S],
        timings: &mut Vec<StageTiming>,
    ) -> Vec<Rendered> {
        timings.clear();
        self.resolve_inner(queries, Some(timings))
    }

    fn resolve_inner<S: AsRef<str>>(
        &self,
        queries: &[S],
        mut timings: Option<&mut Vec<StageTiming>>,
    ) -> Vec<Rendered> {
        let (matcher, generation) = self.snapshot();
        let mut scratch = MatchScratch::new();
        queries
            .iter()
            .map(|query| {
                let probe_start = Instant::now();
                let normalized = normalized(query.as_ref());
                // Generation-checked lookup: if a swap landed
                // mid-batch, a plain hit could carry new-dictionary
                // spans and mix two dictionaries within one batch —
                // `get_at` rejects (and counts a miss) instead, and
                // the query is recomputed against the snapshot.
                let probe = self.cache.get_at(generation, &normalized);
                let cache_us = as_us(probe_start.elapsed());
                self.metrics.cache_lookup.record(cache_us);
                if let Some(hit) = probe {
                    // Hit: segment and render never ran, so only the
                    // lookup stage is recorded — zeros would dilute the
                    // miss-path stage distributions.
                    if let Some(timings) = timings.as_deref_mut() {
                        timings.push(StageTiming {
                            cache_us,
                            ..StageTiming::default()
                        });
                    }
                    return hit;
                }
                let segment_start = Instant::now();
                let spans = Arc::new(
                    matcher.resolve(SegmentRequest::normalized(&normalized).scratch(&mut scratch)),
                );
                let segment_us = as_us(segment_start.elapsed());
                self.metrics.segment.record(segment_us);
                let render_start = Instant::now();
                let entry = Rendered {
                    line: Arc::from(format_spans(&spans).as_str()),
                    http: Arc::from(http::response(200, "OK", &http::spans_json(&spans)).as_str()),
                    spans,
                };
                self.cache.insert_at(generation, &normalized, entry.clone());
                let render_us = as_us(render_start.elapsed());
                self.metrics.render.record(render_us);
                if let Some(timings) = timings.as_deref_mut() {
                    timings.push(StageTiming {
                        cache_us,
                        segment_us,
                        render_us,
                    });
                }
                entry
            })
            .collect()
    }

    /// Aggregated cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Window-cache counters of the currently served matcher, when one
    /// is attached ([`websyn_core::EntityMatcher::with_window_cache`]).
    /// Unlike the result cache these survive a
    /// [`Engine::swap_matcher`] only if the new matcher shares the old
    /// cache ([`websyn_core::EntityMatcher::with_shared_window_cache`]).
    pub fn window_cache_stats(&self) -> Option<websyn_core::WindowCacheStats> {
        self.matcher().window_cache().map(|c| c.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_common::EntityId;
    use websyn_core::FuzzyConfig;

    fn matcher() -> Arc<EntityMatcher> {
        Arc::new(
            EntityMatcher::from_pairs(vec![
                ("indy 4", EntityId::new(0)),
                ("madagascar 2", EntityId::new(1)),
                ("canon eos 350d", EntityId::new(2)),
            ])
            .with_fuzzy(FuzzyConfig::default()),
        )
    }

    fn small_engine() -> Engine {
        Engine::builder(matcher())
            .cache_shards(2)
            .cache_capacity(16)
            .build()
    }

    #[test]
    fn cached_and_uncached_results_are_identical() {
        let e = small_engine();
        let m = e.matcher();
        for query in [
            "Indy 4 near san fran",
            "cheapest cannon eos 350d deals",
            "nothing to see",
            "",
        ] {
            let cold = e.resolve(query);
            let warm = e.resolve(query);
            assert_eq!(*cold, m.segment(query), "{query:?} cold");
            assert_eq!(cold, warm, "{query:?} warm hit equals cold fill");
        }
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.misses, 4);
    }

    #[test]
    fn normalization_variants_share_one_entry() {
        let e = small_engine();
        assert_eq!(*e.resolve("INDY-4!"), e.matcher().segment("indy 4"));
        assert_eq!(*e.resolve("indy 4"), e.matcher().segment("indy 4"));
        let stats = e.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn builder_clamps_degenerate_knobs() {
        let e = Engine::builder(matcher())
            .cache_shards(0)
            .cache_capacity(0)
            .build();
        // Clamped to one shard holding at least one entry — a working
        // (if tiny) cache, not a panic.
        assert_eq!(e.resolve("indy 4").len(), 1);
        assert_eq!(e.resolve("indy 4").len(), 1);
        assert_eq!(e.cache_stats().hits, 1);
        // The whole-config setter is equivalent to the field setters.
        let e = Engine::builder(matcher())
            .config(EngineConfig {
                cache_shards: 2,
                cache_capacity: 16,
            })
            .build();
        assert_eq!(e.cache_stats().capacity, 16);
    }

    #[test]
    fn swap_invalidates_and_serves_the_new_dictionary() {
        let e = small_engine();
        // Warm the cache with the old dictionary.
        assert_eq!(e.resolve("indy 4").len(), 1);
        assert_eq!(e.cache_stats().entries, 1);
        // Rebuild-and-swap: the new dictionary maps the same surface to
        // a different entity, so a stale cache entry would be visible.
        let new = Arc::new(EntityMatcher::from_pairs(vec![(
            "indy 4",
            EntityId::new(42),
        )]));
        e.swap_matcher(Arc::clone(&new));
        assert_eq!(e.swaps(), 1);
        assert_eq!(e.cache_stats().entries, 0, "swap cleared the cache");
        let spans = e.resolve("indy 4");
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].entity, EntityId::new(42));
        assert_eq!(*spans, new.segment("indy 4"));
    }

    #[test]
    fn timed_batches_reuse_one_vec_without_stale_entries() {
        // Regression: the worker loop reuses one timings Vec across
        // batches. The engine must clear it, or from the second batch
        // on each job zips against another batch's stale entries (and
        // the Vec grows forever).
        let e = small_engine();
        let mut timings = Vec::new();
        let first = e.resolve_rendered_batch_timed(&["indy 4", "madagascar 2"], &mut timings);
        assert_eq!(first.len(), 2);
        assert_eq!(timings.len(), 2, "one entry per query in the batch");
        let second = e.resolve_rendered_batch_timed(&["indy 4"], &mut timings);
        assert_eq!(second.len(), 1);
        assert_eq!(timings.len(), 1, "previous batch's entries cleared");
        // That lone query warm-hit the cache, so its (index-aligned)
        // entry records no segmentation or render work.
        assert_eq!(timings[0].segment_us, 0);
        assert_eq!(timings[0].render_us, 0);
    }

    #[test]
    fn cached_renderings_are_byte_identical_per_wire() {
        let e = small_engine();
        let m = e.matcher();
        for query in [
            "Indy 4 near san fran",
            "cheapest cannon eos 350d deals",
            "nothing to see",
            "",
        ] {
            let golden_line = format_spans(&m.segment(query));
            let golden_http = http::response(200, "OK", &http::spans_json(&m.segment(query)));
            let cold = e.resolve_rendered_batch(&[query]).remove(0);
            let warm = e.resolve_rendered_batch(&[query]).remove(0);
            assert_eq!(&*cold.line, golden_line, "{query:?} cold line");
            assert_eq!(&*cold.http, golden_http, "{query:?} cold http");
            assert_eq!(&*warm.for_wire(Wire::Line), golden_line, "{query:?} warm");
            assert_eq!(&*warm.for_wire(Wire::Http), golden_http, "{query:?} warm");
            // The warm hit is the same allocation the miss filled — a
            // pure lookup-and-write, not a re-serialization, on both
            // wires.
            assert!(Arc::ptr_eq(&cold.line, &warm.line), "{query:?} line share");
            assert!(Arc::ptr_eq(&cold.http, &warm.http), "{query:?} http share");
        }
        // Span and rendering views of the same entry stay coherent
        // after a swap too.
        let new = Arc::new(EntityMatcher::from_pairs(vec![(
            "indy 4",
            EntityId::new(42),
        )]));
        e.swap_matcher(Arc::clone(&new));
        assert_eq!(
            &*e.resolve_line("indy 4"),
            format_spans(&new.segment("indy 4"))
        );
        assert_eq!(
            &*e.resolve_rendered_batch(&["indy 4"]).remove(0).http,
            http::response(200, "OK", &http::spans_json(&new.segment("indy 4")))
        );
    }

    #[test]
    fn batch_resolution_matches_sequential_segment() {
        let e = small_engine();
        let queries = vec![
            "indy 4 showtimes".to_string(),
            "cannon eos 350d price".to_string(),
            "indy 4 showtimes".to_string(), // duplicate: cache hit
            "madagascar 2".to_string(),
        ];
        let m = e.matcher();
        let batch = e.resolve_batch(&queries);
        for (query, spans) in queries.iter().zip(&batch) {
            assert_eq!(**spans, m.segment(query), "{query:?}");
        }
        let stats = e.cache_stats();
        assert_eq!(stats.hits, 1, "duplicate in the batch hit the cache");
        assert_eq!(stats.misses, 3);
    }
}
