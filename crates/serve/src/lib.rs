//! # websyn-serve
//!
//! The sharded serving front end for the websyn matcher — the layer
//! between [`websyn_core::EntityMatcher`] and the outside world. The
//! paper's fuzzy segmenter is meant to sit on a live web-query path;
//! this crate puts it there:
//!
//! - [`ShardedCache`] — a shared-nothing sharded LRU of
//!   `normalized query → Vec<MatchSpan>`. Query logs are Zipfian, so a
//!   small cache absorbs most of the fuzzy path's worst-case traffic;
//!   per-shard locks keep hits from serializing across cores, and
//!   generation-checked inserts make dictionary swaps race-free.
//! - [`Engine`] — the swappable matcher behind the cache, implementing
//!   the rebuild-and-swap deployment story for the immutable compiled
//!   dictionary ([`Engine::swap_matcher`]).
//! - [`BoundedQueue`] — the bounded request queue + batch aggregator:
//!   workers drain time/count-windowed batches, a full queue rejects
//!   with explicit backpressure.
//! - [`Server`] — a TCP front end speaking a line-delimited protocol
//!   ([`proto`]), with pipelining, in-order responses, a worker pool
//!   and graceful shutdown.
//!
//! ## A complete round trip
//!
//! ```
//! use std::io::{BufRead, BufReader, Write};
//! use std::net::TcpStream;
//! use std::sync::Arc;
//! use websyn_common::EntityId;
//! use websyn_core::{EntityMatcher, FuzzyConfig};
//! use websyn_serve::{Engine, EngineConfig, ServeConfig, Server};
//!
//! let matcher = EntityMatcher::from_pairs(vec![("indy 4", EntityId::new(7))])
//!     .with_fuzzy(FuzzyConfig::default());
//! let engine = Arc::new(Engine::new(Arc::new(matcher), EngineConfig::default()));
//! let server = Server::start(engine, "127.0.0.1:0", ServeConfig::default()).unwrap();
//!
//! let mut conn = TcpStream::connect(server.addr()).unwrap();
//! writeln!(conn, "Indy 4 near San Fran").unwrap();
//! let mut line = String::new();
//! BufReader::new(conn.try_clone().unwrap()).read_line(&mut line).unwrap();
//! assert_eq!(line.trim_end(), "OK\t0,2,7,0,indy 4");
//! server.shutdown();
//! ```

pub mod cache;
pub mod engine;
pub mod proto;
pub mod queue;
pub mod server;

pub use cache::{CacheStats, ShardedCache};
pub use engine::{Engine, EngineConfig};
pub use proto::{format_spans, format_stats};
pub use queue::{BoundedQueue, PushError};
pub use server::{ServeConfig, Server, ServerHandle};
