//! # websyn-serve
//!
//! The sharded serving front end for the websyn matcher — the layer
//! between [`websyn_core::EntityMatcher`] and the outside world. The
//! paper's fuzzy segmenter is meant to sit on a live web-query path;
//! this crate puts it there:
//!
//! - [`Engine`] — a live dictionary ([`websyn_core::DictHandle`])
//!   behind a [`ShardedCache`] of pre-rendered results ([`Rendered`]:
//!   spans + one serialized response per wire format). Dictionary
//!   updates arrive as deltas ([`Engine::apply_delta`], wired to
//!   `POST /admin/dict/delta` and the `#dict` line verb) and are
//!   served immediately — no restart, no base recompile, and the
//!   result cache invalidates selectively against the delta's
//!   footprint instead of flushing wholesale. The legacy
//!   rebuild-and-swap path survives as a deprecated shim
//!   (`Engine::swap_matcher`). Built with [`Engine::builder_with_dict`]
//!   (or [`Engine::builder`] from a bare matcher).
//! - [`Server`] — a transport-agnostic TCP front end with pipelining,
//!   in-order responses, batch aggregation, a worker pool, bounded
//!   queueing with explicit backpressure, and graceful shutdown. Tuned
//!   with [`ServerConfig::builder`].
//! - [`Protocol`] — the transport boundary: request framing/parsing
//!   ([`RequestParser`] → [`Request`]), response rendering, and
//!   error/backpressure mapping ([`Reject`]). Two implementations
//!   ship: [`LineProtocol`] (the line-delimited protocol of [`proto`])
//!   and [`HttpProtocol`] (the std-only HTTP/1.1 front end of
//!   [`http`]). Both run on the same connections, queue, workers and
//!   cache — and on the same pre-rendered cache entries, so a cache
//!   hit is a pure lookup-and-write on every transport.
//! - [`Cluster`] / [`Router`] — multi-process serving: a worker fleet
//!   of independent engines behind a hash-partitioning HTTP router
//!   ([`router`]), supervised with health probes, backoff restarts and
//!   zero-downtime rolling rebuilds ([`cluster`]). The router fans
//!   dictionary deltas out to the whole fleet, and
//!   [`Cluster::rolling_restart_with_dict`] rolls every worker onto a
//!   new dictionary artifact with zero downtime.
//! - [`metrics`] — the observability layer (built on [`websyn_obs`]):
//!   per-stage pipeline histograms ([`ServeMetrics`]), the bounded
//!   slow-query trace ([`SlowEntry`], `GET /debug/slow`), per-class
//!   reject counters, and the Prometheus text exposition behind
//!   `GET /metrics` — which also surfaces the matcher's internal
//!   telemetry ([`websyn_core::matcher_telemetry`]) and the distance
//!   kernel dispatch split ([`websyn_text::kernel_dispatch_stats`]).
//!
//! ## A complete round trip (line protocol)
//!
//! ```
//! use std::io::{BufRead, BufReader, Write};
//! use std::net::TcpStream;
//! use std::sync::Arc;
//! use websyn_common::EntityId;
//! use websyn_core::{EntityMatcher, FuzzyConfig};
//! use websyn_serve::{Engine, Server, ServerConfig};
//!
//! let matcher = EntityMatcher::from_pairs(vec![("indy 4", EntityId::new(7))])
//!     .with_fuzzy(FuzzyConfig::default());
//! let engine = Arc::new(Engine::builder(Arc::new(matcher)).build());
//! let server = Server::start(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
//!
//! let mut conn = TcpStream::connect(server.addr()).unwrap();
//! writeln!(conn, "Indy 4 near San Fran").unwrap();
//! let mut line = String::new();
//! BufReader::new(conn.try_clone().unwrap()).read_line(&mut line).unwrap();
//! assert_eq!(line.trim_end(), "OK\t0,2,7,0,indy 4");
//! server.shutdown();
//! ```
//!
//! ## The same engine over HTTP/1.1
//!
//! ```
//! use std::io::{Read, Write};
//! use std::net::TcpStream;
//! use std::sync::Arc;
//! use websyn_common::EntityId;
//! use websyn_core::EntityMatcher;
//! use websyn_serve::{Engine, HttpProtocol, Server, ServerConfig};
//!
//! let matcher = EntityMatcher::from_pairs(vec![("indy 4", EntityId::new(7))]);
//! let engine = Arc::new(Engine::builder(Arc::new(matcher)).build());
//! let server = Server::start_with(
//!     engine,
//!     "127.0.0.1:0",
//!     ServerConfig::default(),
//!     Arc::new(HttpProtocol),
//! )
//! .unwrap();
//!
//! let mut conn = TcpStream::connect(server.addr()).unwrap();
//! write!(
//!     conn,
//!     "GET /match?q=Indy+4+near+San+Fran HTTP/1.1\r\nConnection: close\r\n\r\n"
//! )
//! .unwrap();
//! let mut response = String::new();
//! conn.read_to_string(&mut response).unwrap();
//! assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
//! assert!(response.ends_with(
//!     r#"{"spans":[{"start":0,"end":2,"entity":7,"distance":0,"surface":"indy 4"}]}"#
//! ));
//! server.shutdown();
//! ```

// Wire formats are public modules: their grammars (and serializers)
// are part of the crate's contract with clients. So are the cluster
// modules — binaries outside this crate (the bench harness) host
// worker processes and drive fleets through them.
pub mod cluster;
pub mod http;
pub mod metrics;
pub mod proto;
pub mod protocol;
pub mod router;

// Machinery modules stay private; their deliberate surface is the
// curated re-export list below.
mod cache;
mod engine;
mod queue;
mod server;

pub use cache::{CacheStats, ShardedCache};
pub use cluster::{run_worker_if_flagged, Cluster, ClusterConfig, WORKER_SENTINEL};
pub use engine::{Engine, EngineBuilder, EngineConfig, Rendered, StageTiming};
// The dictionary-lifecycle vocabulary Engine speaks, re-exported so
// serving code needs no separate websyn_core import for it.
pub use http::HttpProtocol;
pub use metrics::{ServeMetrics, SlowEntry};
pub use proto::{format_spans, format_stats, LineProtocol};
pub use protocol::{Protocol, Reject, Request, RequestParser, Wire};
pub use router::{Ring, Router, RouterConfig};
pub use server::{ServeConfig, Server, ServerConfig, ServerConfigBuilder, ServerHandle};
pub use websyn_core::{DictDelta, DictHandle, DictStats};
