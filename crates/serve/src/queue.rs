//! A bounded MPMC request queue with batched, time-windowed pops.
//!
//! The serving front end must never buffer unboundedly: when traffic
//! outruns the worker pool the queue fills and [`BoundedQueue::push`]
//! fails fast with [`PushError::Full`], which the connection layer
//! turns into an explicit `ERR busy` response — backpressure the
//! client can see, instead of latency quietly diverging.
//!
//! Consumers pop *batches*: [`BoundedQueue::pop_batch`] blocks for the
//! first item, then keeps collecting until it has `max` items or
//! `window` has elapsed. That is the batch aggregator of the serving
//! stack — under load a worker wakes up to a full batch and hands it to
//! the matcher in one [`websyn_core::EntityMatcher`] pass (sharing one
//! window memo), while a lone request at 3 a.m. waits at most `window`
//! before it is served.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a push was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — shed load now, retry later.
    Full,
    /// The queue was closed for shutdown; no further work is accepted.
    Closed,
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full => write!(f, "queue full"),
            PushError::Closed => write!(f, "queue closed"),
        }
    }
}

impl std::error::Error for PushError {}

#[derive(Debug)]
struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A capacity-bounded multi-producer multi-consumer queue.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (clamped ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of queued items. (The queue is crate-internal;
    /// the introspection accessors exist for tests and diagnostics.)
    #[allow(dead_code)]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth.
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether the queue is currently empty.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueues `item` without blocking. Fails with
    /// [`PushError::Full`] at capacity and [`PushError::Closed`] after
    /// [`BoundedQueue::close`]; the item is dropped in both cases (the
    /// caller still owns the request context and reports the reject).
    pub fn push(&self, item: T) -> Result<(), PushError> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.closed {
            return Err(PushError::Closed);
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Pops a batch into `out` (cleared first): blocks until at least
    /// one item is available, then keeps collecting until `out` holds
    /// `max` items or `window` has elapsed since the first item was
    /// taken. Returns `false` — with `out` empty — only when the queue
    /// is closed and fully drained, which is the worker's signal to
    /// exit. (The server's workers use [`BoundedQueue::pop_batch_timed`];
    /// this untimed form is the API the tests and simple consumers use.)
    #[allow(dead_code)]
    pub fn pop_batch(&self, max: usize, window: Duration, out: &mut Vec<T>) -> bool {
        self.pop_batch_timed(max, window, out).is_some()
    }

    /// [`BoundedQueue::pop_batch`], additionally reporting *when* the
    /// first item was taken — the boundary between a request's
    /// queue-wait stage (enqueue → first take) and the batch-assembly
    /// stage (first take → return). `None` means closed-and-drained.
    pub fn pop_batch_timed(
        &self,
        max: usize,
        window: Duration,
        out: &mut Vec<T>,
    ) -> Option<Instant> {
        let max = max.max(1);
        out.clear();
        let mut state = self.state.lock().expect("queue poisoned");
        // Phase 1: block for the first item (or closure).
        loop {
            if !state.items.is_empty() {
                break;
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue poisoned");
        }
        let first_taken = Instant::now();
        while out.len() < max {
            match state.items.pop_front() {
                Some(item) => out.push(item),
                None => break,
            }
        }
        // Phase 2: top the batch up until `max` or the window closes.
        // Closure short-circuits — drain what exists and return.
        let deadline = Instant::now() + window;
        while out.len() < max && !state.closed {
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                break;
            };
            let (next, timeout) = self
                .available
                .wait_timeout(state, remaining)
                .expect("queue poisoned");
            state = next;
            while out.len() < max {
                match state.items.pop_front() {
                    Some(item) => out.push(item),
                    None => break,
                }
            }
            if timeout.timed_out() {
                break;
            }
        }
        Some(first_taken)
    }

    /// Closes the queue: pending items remain poppable, further pushes
    /// fail, and blocked consumers wake up.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.available.notify_all();
    }

    /// Whether [`BoundedQueue::close`] has been called.
    #[allow(dead_code)]
    pub fn is_closed(&self) -> bool {
        self.state.lock().expect("queue poisoned").closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const WINDOW: Duration = Duration::from_millis(5);

    #[test]
    fn push_pop_roundtrip_in_order() {
        let q = BoundedQueue::new(8);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        let mut batch = Vec::new();
        assert!(q.pop_batch(8, WINDOW, &mut batch));
        assert_eq!(batch, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.push(3), Err(PushError::Full));
        assert_eq!(q.len(), 2);
        // Draining reopens capacity.
        let mut batch = Vec::new();
        q.pop_batch(2, WINDOW, &mut batch);
        assert_eq!(q.push(3), Ok(()));
    }

    #[test]
    fn batch_is_capped_at_max() {
        let q = BoundedQueue::new(16);
        for i in 0..10 {
            q.push(i).unwrap();
        }
        let mut batch = Vec::new();
        assert!(q.pop_batch(4, WINDOW, &mut batch));
        assert_eq!(batch, vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 6);
    }

    #[test]
    fn closed_and_drained_returns_false() {
        let q: BoundedQueue<u32> = BoundedQueue::new(4);
        q.push(7).unwrap();
        q.close();
        assert_eq!(q.push(8), Err(PushError::Closed));
        let mut batch = Vec::new();
        // Pending items still drain after close...
        assert!(q.pop_batch(4, WINDOW, &mut batch));
        assert_eq!(batch, vec![7]);
        // ...then the consumer is told to exit.
        assert!(!q.pop_batch(4, WINDOW, &mut batch));
        assert!(batch.is_empty());
    }

    #[test]
    fn window_aggregates_items_arriving_late() {
        let q = Arc::new(BoundedQueue::new(16));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                q.push(1).unwrap();
                std::thread::sleep(Duration::from_millis(2));
                q.push(2).unwrap();
            })
        };
        let mut batch = Vec::new();
        // A generous window must collect both items into one batch.
        assert!(q.pop_batch(8, Duration::from_millis(500), &mut batch));
        producer.join().unwrap();
        // Either both arrived in the window, or the second pop gets it;
        // with a 500ms window the single-batch outcome is guaranteed
        // unless the scheduler starves the producer for half a second.
        assert_eq!(batch, vec![1, 2]);
    }

    #[test]
    fn blocked_consumer_wakes_on_close() {
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut batch = Vec::new();
                q.pop_batch(4, WINDOW, &mut batch)
            })
        };
        std::thread::sleep(Duration::from_millis(5));
        q.close();
        assert!(!consumer.join().unwrap(), "consumer saw the shutdown");
    }

    #[test]
    fn close_during_the_batch_window_still_drains_everything() {
        // The race this pins: the consumer has taken its first item and
        // is parked inside Phase 2's `wait_timeout` when producers push
        // more items and then `close()` fires. Closure must not eat the
        // late items — the consumer drains them (this batch or the
        // next), then sees the exit signal. A worker pool stuck here
        // would hang `ServerHandle::shutdown` forever.
        for _ in 0..50 {
            let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(16));
            q.push(1).unwrap();
            let consumer = {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut batch = Vec::new();
                    // A 10s window: only closure can end Phase 2 early,
                    // so a missed wakeup fails the test loudly.
                    while q.pop_batch(8, Duration::from_secs(10), &mut batch) {
                        got.extend(batch.iter().copied());
                    }
                    got
                })
            };
            // Let the consumer take item 1 and enter the window wait,
            // then race late pushes against the close.
            std::thread::sleep(Duration::from_millis(1));
            q.push(2).unwrap();
            q.push(3).unwrap();
            q.close();
            assert_eq!(q.push(4), Err(PushError::Closed));
            let start = Instant::now();
            let got = consumer.join().unwrap();
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "consumer must exit on close, not sleep out the window"
            );
            assert_eq!(got, vec![1, 2, 3], "late pushes survive the close");
            // Post-close pops report the shutdown immediately.
            let mut batch = Vec::new();
            assert!(!q.pop_batch(8, Duration::from_secs(10), &mut batch));
            assert!(batch.is_empty());
        }
    }

    #[test]
    fn contended_producers_and_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(1024));
        let n_producers = 4;
        let per_producer = 250u32;
        let producers: Vec<_> = (0..n_producers)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..per_producer {
                        loop {
                            match q.push(p * per_producer + i) {
                                Ok(()) => break,
                                Err(PushError::Full) => std::thread::yield_now(),
                                Err(PushError::Closed) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    let mut batch = Vec::new();
                    while q.pop_batch(32, Duration::from_millis(1), &mut batch) {
                        got.extend(batch.iter().copied());
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u32> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let expect: Vec<u32> = (0..n_producers * per_producer).collect();
        assert_eq!(all, expect, "every pushed item popped exactly once");
    }
}
