//! `websyn-cluster` — the cluster serving binary.
//!
//! Runs a [`websyn_serve::Router`] over a fleet of worker processes
//! ([`websyn_serve::Cluster`]), each a re-exec of this binary serving
//! the HTTP/1.1 protocol with its own engine:
//!
//! ```sh
//! websyn-cluster --addr 127.0.0.1:8080 --workers 4 --dict dictionary.tsv
//! curl 'http://127.0.0.1:8080/match?q=indy+4+near+san+fran'
//! curl 'http://127.0.0.1:8080/stats'
//! ```
//!
//! `--smoke` runs the CI self-test instead of serving: start a
//! two-worker fleet, verify responses through the router, SIGKILL a
//! worker and require that every in-flight and subsequent request
//! still succeeds (failover), wait for the monitor to restart the
//! victim, roll the whole fleet with zero downtime, and exit 0 only if
//! all of it held.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};
use websyn_serve::cluster::{run_worker_if_flagged, Cluster, ClusterConfig};
use websyn_serve::http::{percent_encode, read_response};

struct Args {
    addr: String,
    workers: usize,
    replication: usize,
    dict: Option<String>,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8080".to_string(),
        workers: 2,
        replication: 2,
        dict: None,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "bad number for --workers".to_string())?
            }
            "--replication" => {
                args.replication = value("--replication")?
                    .parse()
                    .map_err(|_| "bad number for --replication".to_string())?
            }
            "--dict" => args.dict = Some(value("--dict")?),
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                return Err(
                    "usage: websyn-cluster [--addr A] [--workers N] [--replication N] \
                     [--dict F.tsv] [--smoke]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    if let Some(code) = run_worker_if_flagged() {
        return code;
    }
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.smoke {
        return match smoke() {
            Ok(()) => {
                println!("websyn-cluster: smoke ok (failover + restart + rolling)");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("websyn-cluster: SMOKE FAILED: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    let config = ClusterConfig {
        workers: args.workers,
        replication: args.replication,
        dict: args.dict,
        ..ClusterConfig::default()
    };
    let cluster = match Cluster::start(args.addr.as_str(), config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("websyn-cluster: cannot start on {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "websyn-cluster: routing on {} over {} workers (replication {})",
        cluster.addr(),
        cluster.workers(),
        args.replication
    );
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// One keep-alive GET against the router.
fn get(
    conn: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    target: &str,
) -> Result<(u16, String), String> {
    write!(conn, "GET {target} HTTP/1.1\r\n\r\n").map_err(|e| format!("send: {e}"))?;
    read_response(reader).map_err(|e| format!("recv: {e}"))
}

fn ask(
    conn: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    query: &str,
) -> Result<(u16, String), String> {
    get(conn, reader, &format!("/match?q={}", percent_encode(query)))
}

/// The CI self-test: failover on a worker kill, supervised restart,
/// and a zero-downtime rolling rebuild — all against the demo
/// dictionary, all through one client connection to the router.
fn smoke() -> Result<(), String> {
    let cluster = Cluster::start(
        "127.0.0.1:0",
        ClusterConfig {
            workers: 2,
            replication: 2,
            probe_interval: Duration::from_millis(25),
            ..ClusterConfig::default()
        },
    )
    .map_err(|e| format!("start: {e}"))?;

    let conn = TcpStream::connect(cluster.addr()).map_err(|e| format!("connect: {e}"))?;
    let mut reader = BufReader::new(conn.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut conn = conn;

    // Correctness through the router, exact and fuzzy.
    let exact = ask(&mut conn, &mut reader, "Indy 4 near San Fran")?;
    let want =
        "{\"spans\":[{\"start\":0,\"end\":2,\"entity\":0,\"distance\":0,\"surface\":\"indy 4\"}]}";
    if exact != (200, want.to_string()) {
        return Err(format!("exact: unexpected response {exact:?}"));
    }
    let fuzzy = ask(&mut conn, &mut reader, "cheapest cannon eos 350d deals")?;
    if fuzzy.0 != 200 || !fuzzy.1.contains("\"surface\":\"canon eos 350d\"") {
        return Err(format!("fuzzy: unexpected response {fuzzy:?}"));
    }

    // Kill a worker cold. Every request must keep succeeding: the
    // router fails over, the monitor restarts the victim.
    cluster.kill_worker(0);
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut served_during_outage = 0u32;
    while Instant::now() < deadline {
        for (i, q) in ["indy 4", "madagascar 2", "350d", "digital rebel xt"]
            .iter()
            .enumerate()
        {
            let (status, body) = ask(&mut conn, &mut reader, q)?;
            if status != 200 || !body.contains("\"entity\":") {
                return Err(format!("during outage, {q:?} ({i}): {status} {body:?}"));
            }
            served_during_outage += 1;
        }
        if cluster.healthy_workers() == 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    if !cluster.wait_healthy(2, Duration::from_secs(15)) {
        return Err("killed worker was not restarted in time".to_string());
    }
    if cluster.restarts() == 0 {
        return Err("monitor recorded no restart".to_string());
    }
    if served_during_outage == 0 {
        return Err("no requests were served during the outage window".to_string());
    }

    // Roll the fleet; the service must answer before, during being
    // implicit (rolling_restart drains one worker at a time), after.
    cluster
        .rolling_restart()
        .map_err(|e| format!("rolling restart: {e}"))?;
    let after = ask(&mut conn, &mut reader, "indy 4")?;
    if after.0 != 200 {
        return Err(format!("after rolling restart: {after:?}"));
    }

    // Aggregated stats report the full fleet: summed totals, then the
    // per-worker breakdown.
    let (status, stats) = get(&mut conn, &mut reader, "/stats")?;
    if status != 200 || !stats.contains("\"workers\":2") {
        return Err(format!("stats: unexpected response {status} {stats:?}"));
    }
    if !stats.contains("\"per_worker\":[{\"worker\":0,") || !stats.contains("\"uptime_seconds\":") {
        return Err(format!("stats: missing per-worker breakdown in {stats:?}"));
    }

    // The merged Prometheus exposition carries every worker's series
    // under its own label, plus the router's own counters.
    let (status, metrics) = get(&mut conn, &mut reader, "/metrics")?;
    if status != 200
        || !metrics.contains("worker=\"0\"")
        || !metrics.contains("worker=\"1\"")
        || !metrics.contains("websyn_rejects_total{worker=\"router\",class=\"busy\"}")
        || !metrics.contains("websyn_cluster_workers_up 2")
    {
        return Err(format!("metrics: malformed fleet exposition {metrics:?}"));
    }
    let (status, slow) = get(&mut conn, &mut reader, "/debug/slow")?;
    if status != 200 || !slow.starts_with("{\"workers\":[{\"worker\":0,\"slow\":{") {
        return Err(format!("slow: malformed fleet trace {slow:?}"));
    }

    cluster.shutdown();
    Ok(())
}
