//! `websyn-cluster` — the cluster serving binary.
//!
//! Runs a [`websyn_serve::Router`] over a fleet of worker processes
//! ([`websyn_serve::Cluster`]), each a re-exec of this binary serving
//! the HTTP/1.1 protocol with its own engine:
//!
//! ```sh
//! websyn-cluster --addr 127.0.0.1:8080 --workers 4 --dict dictionary.tsv
//! curl 'http://127.0.0.1:8080/match?q=indy+4+near+san+fran'
//! curl 'http://127.0.0.1:8080/stats'
//! ```
//!
//! `--smoke` runs the CI self-test instead of serving: start a
//! two-worker fleet, verify responses through the router, SIGKILL a
//! worker and require that every in-flight and subsequent request
//! still succeeds (failover), wait for the monitor to restart the
//! victim, roll the whole fleet with zero downtime, fan a dictionary
//! delta out to every worker through `POST /admin/dict/delta` and
//! require the new surface to resolve with no restart, roll the fleet
//! onto a new dictionary artifact, and exit 0 only if all of it held.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::time::{Duration, Instant};
use websyn_serve::cluster::{run_worker_if_flagged, Cluster, ClusterConfig};
use websyn_serve::http::{percent_encode, read_response};

struct Args {
    addr: String,
    workers: usize,
    replication: usize,
    dict: Option<String>,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:8080".to_string(),
        workers: 2,
        replication: 2,
        dict: None,
        smoke: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "bad number for --workers".to_string())?
            }
            "--replication" => {
                args.replication = value("--replication")?
                    .parse()
                    .map_err(|_| "bad number for --replication".to_string())?
            }
            "--dict" => args.dict = Some(value("--dict")?),
            "--smoke" => args.smoke = true,
            "--help" | "-h" => {
                return Err(
                    "usage: websyn-cluster [--addr A] [--workers N] [--replication N] \
                     [--dict F.tsv] [--smoke]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    if let Some(code) = run_worker_if_flagged() {
        return code;
    }
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if args.smoke {
        return match smoke() {
            Ok(()) => {
                println!(
                    "websyn-cluster: smoke ok (failover + restart + rolling + delta + artifact roll)"
                );
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("websyn-cluster: SMOKE FAILED: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    let config = ClusterConfig {
        workers: args.workers,
        replication: args.replication,
        dict: args.dict,
        ..ClusterConfig::default()
    };
    let cluster = match Cluster::start(args.addr.as_str(), config) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("websyn-cluster: cannot start on {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "websyn-cluster: routing on {} over {} workers (replication {})",
        cluster.addr(),
        cluster.workers(),
        args.replication
    );
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// One keep-alive GET against the router.
fn get(
    conn: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    target: &str,
) -> Result<(u16, String), String> {
    write!(conn, "GET {target} HTTP/1.1\r\n\r\n").map_err(|e| format!("send: {e}"))?;
    read_response(reader).map_err(|e| format!("recv: {e}"))
}

fn ask(
    conn: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    query: &str,
) -> Result<(u16, String), String> {
    get(conn, reader, &format!("/match?q={}", percent_encode(query)))
}

/// The CI self-test: failover on a worker kill, supervised restart,
/// and a zero-downtime rolling rebuild — all against the demo
/// dictionary, all through one client connection to the router.
fn smoke() -> Result<(), String> {
    let cluster = Cluster::start(
        "127.0.0.1:0",
        ClusterConfig {
            workers: 2,
            replication: 2,
            probe_interval: Duration::from_millis(25),
            ..ClusterConfig::default()
        },
    )
    .map_err(|e| format!("start: {e}"))?;

    let conn = TcpStream::connect(cluster.addr()).map_err(|e| format!("connect: {e}"))?;
    let mut reader = BufReader::new(conn.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut conn = conn;

    // Correctness through the router, exact and fuzzy.
    let exact = ask(&mut conn, &mut reader, "Indy 4 near San Fran")?;
    let want =
        "{\"spans\":[{\"start\":0,\"end\":2,\"entity\":0,\"distance\":0,\"surface\":\"indy 4\"}]}";
    if exact != (200, want.to_string()) {
        return Err(format!("exact: unexpected response {exact:?}"));
    }
    let fuzzy = ask(&mut conn, &mut reader, "cheapest cannon eos 350d deals")?;
    if fuzzy.0 != 200 || !fuzzy.1.contains("\"surface\":\"canon eos 350d\"") {
        return Err(format!("fuzzy: unexpected response {fuzzy:?}"));
    }

    // Kill a worker cold. Every request must keep succeeding: the
    // router fails over, the monitor restarts the victim.
    cluster.kill_worker(0);
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut served_during_outage = 0u32;
    while Instant::now() < deadline {
        for (i, q) in ["indy 4", "madagascar 2", "350d", "digital rebel xt"]
            .iter()
            .enumerate()
        {
            let (status, body) = ask(&mut conn, &mut reader, q)?;
            if status != 200 || !body.contains("\"entity\":") {
                return Err(format!("during outage, {q:?} ({i}): {status} {body:?}"));
            }
            served_during_outage += 1;
        }
        if cluster.healthy_workers() == 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    if !cluster.wait_healthy(2, Duration::from_secs(15)) {
        return Err("killed worker was not restarted in time".to_string());
    }
    if cluster.restarts() == 0 {
        return Err("monitor recorded no restart".to_string());
    }
    if served_during_outage == 0 {
        return Err("no requests were served during the outage window".to_string());
    }

    // Roll the fleet; the service must answer before, during being
    // implicit (rolling_restart drains one worker at a time), after.
    cluster
        .rolling_restart()
        .map_err(|e| format!("rolling restart: {e}"))?;
    let after = ask(&mut conn, &mut reader, "indy 4")?;
    if after.0 != 200 {
        return Err(format!("after rolling restart: {after:?}"));
    }

    // Aggregated stats report the full fleet: summed totals, then the
    // per-worker breakdown.
    let (status, stats) = get(&mut conn, &mut reader, "/stats")?;
    if status != 200 || !stats.contains("\"workers\":2") {
        return Err(format!("stats: unexpected response {status} {stats:?}"));
    }
    if !stats.contains("\"per_worker\":[{\"worker\":0,") || !stats.contains("\"uptime_seconds\":") {
        return Err(format!("stats: missing per-worker breakdown in {stats:?}"));
    }

    // The merged Prometheus exposition carries every worker's series
    // under its own label, plus the router's own counters.
    let (status, metrics) = get(&mut conn, &mut reader, "/metrics")?;
    if status != 200
        || !metrics.contains("worker=\"0\"")
        || !metrics.contains("worker=\"1\"")
        || !metrics.contains("websyn_rejects_total{worker=\"router\",class=\"busy\"}")
        || !metrics.contains("websyn_cluster_workers_up 2")
    {
        return Err(format!("metrics: malformed fleet exposition {metrics:?}"));
    }
    let (status, slow) = get(&mut conn, &mut reader, "/debug/slow")?;
    if status != 200 || !slow.starts_with("{\"workers\":[{\"worker\":0,\"slow\":{") {
        return Err(format!("slow: malformed fleet trace {slow:?}"));
    }

    // Live dictionary update fanned out to the whole fleet: the router
    // POSTs the delta to every live worker, so the new surface
    // resolves no matter which worker the query hashes to — and no
    // worker restarts.
    let restarts_before_delta = cluster.restarts();
    let before = ask(&mut conn, &mut reader, "starwars kid dance")?;
    if before != (200, "{\"spans\":[]}".to_string()) {
        return Err(format!("pre-delta: unexpected response {before:?}"));
    }
    let delta = "starwars kid\t901\n";
    write!(
        conn,
        "POST /admin/dict/delta HTTP/1.1\r\nContent-Length: {}\r\n\r\n{delta}",
        delta.len()
    )
    .map_err(|e| format!("send delta: {e}"))?;
    let (status, ack) = read_response(&mut reader).map_err(|e| format!("recv delta ack: {e}"))?;
    if status != 200 || !ack.contains("\"ok\":true") || !ack.contains("\"applied_workers\":2") {
        return Err(format!("delta: unexpected fleet ack {status} {ack:?}"));
    }
    let after = ask(&mut conn, &mut reader, "starwars kid dance")?;
    if after.0 != 200 || !after.1.contains("\"entity\":901") {
        return Err(format!("post-delta: unexpected response {after:?}"));
    }
    if cluster.restarts() != restarts_before_delta {
        return Err("delta application restarted a worker".to_string());
    }
    // Aggregated stats sum the fleet's lifecycle counters: one delta
    // segment and one upsert per worker.
    let (_, stats) = get(&mut conn, &mut reader, "/stats")?;
    if !stats.contains("\"segments\":2") || !stats.contains("\"delta_upserts\":2") {
        return Err(format!("delta stats: lifecycle missing in {stats:?}"));
    }

    // Roll the fleet onto a *new artifact*: every replacement worker
    // loads it, with zero downtime. In-memory deltas do not survive the
    // roll — durable changes ride artifacts.
    let artifact = std::env::temp_dir().join(format!(
        "websyn-cluster-smoke-dict-{}.tsv",
        std::process::id()
    ));
    let mut tsv = websyn_serve::cluster::demo_matcher().to_tsv();
    tsv.push_str("rolled surface\t902\n");
    std::fs::write(&artifact, &tsv).map_err(|e| format!("write artifact: {e}"))?;
    cluster
        .rolling_restart_with_dict(Some(artifact.display().to_string()))
        .map_err(|e| format!("rolling restart with dict: {e}"))?;
    let rolled = ask(&mut conn, &mut reader, "rolled surface")?;
    if rolled.0 != 200 || !rolled.1.contains("\"entity\":902") {
        return Err(format!("after artifact roll: {rolled:?}"));
    }
    let gone = ask(&mut conn, &mut reader, "starwars kid dance")?;
    if gone != (200, "{\"spans\":[]}".to_string()) {
        return Err(format!(
            "pre-roll delta unexpectedly survived the roll: {gone:?}"
        ));
    }

    cluster.shutdown();
    let _ = std::fs::remove_file(&artifact);
    Ok(())
}
