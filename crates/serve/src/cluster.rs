//! Multi-process cluster serving: a worker fleet under a supervising
//! router.
//!
//! [`Cluster::start`] spawns `workers` copies of the *current
//! executable* re-entered through the [`WORKER_SENTINEL`] argv flag —
//! so every binary that links this crate (`websyn-cluster`,
//! `websyn-serve`, the bench harness) can become a worker without a
//! separate worker binary. Each worker owns a full [`crate::Engine`]
//! (its own matcher and result cache) and serves the stock HTTP/1.1
//! protocol on an ephemeral port; the parent learns the port from a
//! single `READY <addr>` line on the worker's stdout.
//!
//! Worker lifecycle is tied to two pipes:
//!
//! - **stdout** carries exactly the `READY` line (diagnostics go to
//!   stderr, inherited from the parent);
//! - **stdin** is the stop channel *and* the orphan guard: a worker
//!   blocks reading stdin and exits cleanly on EOF, so dropping the
//!   pipe stops it gracefully — and a crashed parent stops the fleet
//!   the same way, leaving no orphan processes behind.
//!
//! A monitor thread probes every worker's `/stats` endpoint each
//! `probe_interval` and reaps exited processes. A dead or wedged
//! worker is drained from the ring and rescheduled with exponential
//! backoff (so a crash-looping dictionary cannot spin the supervisor),
//! and republished once its replacement reports ready.
//! [`Cluster::rolling_restart`] rebuilds the fleet one worker at a
//! time — drain, wait out in-flight requests, stop, respawn, republish
//! — which with replication ≥ 2 (or the router's fallback scan) keeps
//! every query answerable throughout: the zero-downtime dictionary
//! rollout the Engine's swap story promises, extended across
//! processes.

use crate::router::{Ring, Router, RouterConfig};
use crate::{Engine, EngineConfig, HttpProtocol, Server, ServerConfig};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, ChildStdin, Command, ExitCode, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use websyn_common::EntityId;
use websyn_core::{DictHandle, EntityMatcher, FuzzyConfig};

/// The argv flag that re-enters a binary as a cluster worker. Binaries
/// that can host workers call [`run_worker_if_flagged`] first thing in
/// `main`.
pub const WORKER_SENTINEL: &str = "--cluster-worker";

/// The built-in demo dictionary: the paper's running examples. Served
/// whenever no `--dict` artifact is given.
pub fn demo_matcher() -> EntityMatcher {
    EntityMatcher::from_pairs(vec![
        (
            "Indiana Jones and the Kingdom of the Crystal Skull",
            EntityId::new(0),
        ),
        ("indy 4", EntityId::new(0)),
        ("indiana jones 4", EntityId::new(0)),
        ("madagascar 2", EntityId::new(1)),
        ("madagascar escape 2 africa", EntityId::new(1)),
        ("canon eos 350d", EntityId::new(2)),
        ("digital rebel xt", EntityId::new(2)),
        ("350d", EntityId::new(2)),
    ])
    .with_fuzzy(FuzzyConfig::default())
}

/// Default capacity of the serving-path window cache (resolved fuzzy
/// windows, cross-batch — see
/// [`EntityMatcher::with_window_cache`]). Entries are a short string
/// plus a few words, so this is a couple of MB at worst.
const WINDOW_CACHE_CAPACITY: usize = 65_536;

/// Loads a dictionary lifecycle handle: an [`EntityMatcher::to_tsv`]
/// artifact when a path is given, the demo dictionary otherwise, as
/// the base of a fresh [`DictHandle`] lineage — ready for live delta
/// updates. Fuzzy-enabled matchers get a cross-batch window cache
/// attached, so recurring query fragments skip fuzzy re-verification
/// across batches.
pub fn load_dict(dict: Option<&str>) -> Result<DictHandle, String> {
    let matcher = match dict {
        None => demo_matcher(),
        Some(path) => {
            let tsv =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            #[allow(deprecated)]
            EntityMatcher::from_tsv(&tsv).map_err(|e| format!("cannot parse {path}: {e}"))?
        }
    };
    let matcher = if matcher.fuzzy_config().is_some() {
        matcher.with_window_cache(WINDOW_CACHE_CAPACITY)
    } else {
        matcher
    };
    Ok(DictHandle::new(matcher))
}

/// Loads a dictionary as a bare matcher.
#[deprecated(
    since = "0.1.0",
    note = "use load_dict — the DictHandle carries the same matcher \
            plus the live-update lifecycle"
)]
pub fn load_matcher(dict: Option<&str>) -> Result<EntityMatcher, String> {
    Ok((*load_dict(dict)?.matcher()).clone())
}

/// If the process was invoked with [`WORKER_SENTINEL`], runs the
/// worker to completion and returns its exit code; otherwise returns
/// `None` and `main` proceeds normally.
pub fn run_worker_if_flagged() -> Option<ExitCode> {
    let args: Vec<String> = std::env::args().collect();
    if args.get(1).map(String::as_str) != Some(WORKER_SENTINEL) {
        return None;
    }
    Some(worker_main(&args[2..]))
}

/// The worker process body: build an engine, serve HTTP on an
/// ephemeral port, report `READY <addr>` on stdout, and serve until
/// stdin reaches EOF (the parent dropped the stop pipe — or died).
pub fn worker_main(args: &[String]) -> ExitCode {
    let mut dict: Option<String> = None;
    let mut server = ServerConfig::default();
    let mut engine_config = EngineConfig::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        let parsed = (|| -> Result<(), String> {
            match flag.as_str() {
                "--dict" => dict = Some(value("--dict")?),
                "--workers" => server.workers = parse(&value("--workers")?)?,
                "--queue-depth" => server.queue_depth = parse(&value("--queue-depth")?)?,
                "--batch-max" => server.batch_max = parse(&value("--batch-max")?)?,
                "--batch-window-us" => {
                    server.batch_window =
                        Duration::from_micros(parse(&value("--batch-window-us")?)?)
                }
                "--cache-capacity" => {
                    engine_config.cache_capacity = parse(&value("--cache-capacity")?)?
                }
                "--cache-shards" => engine_config.cache_shards = parse(&value("--cache-shards")?)?,
                "--slow-threshold-us" => {
                    server.slow_threshold =
                        Duration::from_micros(parse(&value("--slow-threshold-us")?)?)
                }
                "--slow-sample-every" => {
                    server.slow_sample_every = parse::<u64>(&value("--slow-sample-every")?)?.max(1)
                }
                other => return Err(format!("unknown worker flag {other:?}")),
            }
            Ok(())
        })();
        if let Err(msg) = parsed {
            eprintln!("cluster worker: {msg}");
            return ExitCode::FAILURE;
        }
    }
    let dict_handle = match load_dict(dict.as_deref()) {
        Ok(h) => h,
        Err(msg) => {
            eprintln!("cluster worker: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let engine = Arc::new(
        Engine::builder_with_dict(dict_handle)
            .config(engine_config)
            .build(),
    );
    let handle = match Server::start_with(engine, "127.0.0.1:0", server, Arc::new(HttpProtocol)) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("cluster worker: cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The handshake: exactly one line on stdout, then stdout is quiet.
    println!("READY {}", handle.addr());
    let _ = io::stdout().flush();
    // Block until the parent drops our stdin (graceful stop) or dies
    // (EOF all the same). Any actual input is ignored.
    let mut sink = [0u8; 64];
    let mut stdin = io::stdin();
    loop {
        match stdin.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
    handle.shutdown();
    ExitCode::SUCCESS
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number {s:?}"))
}

/// Cluster topology and supervision tuning.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Fleet size (clamped ≥ 1).
    pub workers: usize,
    /// Hot-shard replication factor (clamped to `1..=workers`).
    pub replication: usize,
    /// Dictionary TSV handed to every worker (`None` = demo
    /// dictionary).
    pub dict: Option<String>,
    /// Extra flags forwarded verbatim to each worker process
    /// (`--workers`, `--batch-window-us`, …).
    pub worker_args: Vec<String>,
    /// Executable to spawn workers from. `None` re-execs the current
    /// binary — right for the serving binaries; integration tests
    /// (whose current executable is the test harness) point this at a
    /// sentinel-aware binary instead.
    pub worker_exe: Option<std::path::PathBuf>,
    /// How long a spawned worker may take to report `READY`.
    pub ready_timeout: Duration,
    /// Health-probe cadence of the fleet monitor.
    pub probe_interval: Duration,
    /// First restart delay after a worker failure; doubles per
    /// consecutive failure.
    pub backoff_base: Duration,
    /// Restart delay ceiling.
    pub backoff_max: Duration,
    /// Router tuning.
    pub router: RouterConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            replication: 2,
            dict: None,
            worker_args: Vec::new(),
            worker_exe: None,
            ready_timeout: Duration::from_secs(10),
            probe_interval: Duration::from_millis(100),
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_secs(2),
            router: RouterConfig::default(),
        }
    }
}

/// The restart delay after `failures` consecutive failures:
/// `base · 2^(failures-1)`, capped at `max`.
fn backoff_delay(failures: u32, base: Duration, max: Duration) -> Duration {
    let exp = failures.saturating_sub(1).min(16);
    base.saturating_mul(1u32 << exp).min(max)
}

/// A live worker process: the child, its stop pipe, its serving
/// address, and the monitor's consecutive-probe-failure count.
struct WorkerProc {
    child: Child,
    stdin: Option<ChildStdin>,
    addr: SocketAddr,
    probe_failures: u32,
}

/// Supervision state of one fleet slot.
enum SlotState {
    Running(WorkerProc),
    /// Waiting out a restart delay after `failures` consecutive
    /// failures.
    Backoff {
        until: Instant,
        failures: u32,
    },
}

/// Spawns one worker process serving `dict` (`None` = demo
/// dictionary) and waits for its `READY` handshake. The dictionary is
/// a parameter — not read from `config` — because a rolling restart
/// can move the fleet onto a new artifact, and every later respawn
/// (including the monitor's crash recovery) must load that artifact,
/// not the one the cluster started with.
fn spawn_worker(config: &ClusterConfig, dict: Option<&str>) -> io::Result<WorkerProc> {
    let exe = match &config.worker_exe {
        Some(path) => path.clone(),
        None => std::env::current_exe()?,
    };
    let mut cmd = Command::new(exe);
    cmd.arg(WORKER_SENTINEL);
    if let Some(dict) = dict {
        cmd.args(["--dict", dict]);
    }
    cmd.args(&config.worker_args);
    cmd.stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    let mut child = cmd.spawn()?;
    let stdin = child.stdin.take();
    let stdout = child
        .stdout
        .take()
        .ok_or_else(|| io::Error::other("worker stdout not captured"))?;
    // The handshake read happens on a side thread so a wedged worker
    // costs `ready_timeout`, not forever.
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut line = String::new();
        let _ = BufReader::new(stdout).read_line(&mut line);
        let _ = tx.send(line);
    });
    let line = match rx.recv_timeout(config.ready_timeout) {
        Ok(line) => line,
        Err(_) => {
            let _ = child.kill();
            let _ = child.wait();
            return Err(io::Error::other("worker did not report READY in time"));
        }
    };
    let addr = line
        .trim()
        .strip_prefix("READY ")
        .and_then(|a| a.parse().ok());
    let Some(addr) = addr else {
        let _ = child.kill();
        let _ = child.wait();
        return Err(io::Error::other(format!("bad worker handshake {line:?}")));
    };
    Ok(WorkerProc {
        child,
        stdin,
        addr,
        probe_failures: 0,
    })
}

/// Stops a worker: drop the stop pipe, give it `grace` to exit, then
/// kill. Always reaps the child.
fn stop_worker(mut proc: WorkerProc, grace: Duration) {
    drop(proc.stdin.take());
    let deadline = Instant::now() + grace;
    loop {
        match proc.child.try_wait() {
            Ok(Some(_)) => return,
            Ok(None) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(5)),
            _ => break,
        }
    }
    let _ = proc.child.kill();
    let _ = proc.child.wait();
}

/// `GET /stats` against one worker; `Ok` means the worker answered a
/// well-formed 200 within the timeout.
fn probe(addr: SocketAddr, timeout: Duration) -> io::Result<()> {
    let mut conn = TcpStream::connect_timeout(&addr, timeout)?;
    conn.set_read_timeout(Some(timeout))?;
    conn.set_write_timeout(Some(timeout))?;
    conn.write_all(b"GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n")?;
    let (status, _) = crate::http::read_response(&mut BufReader::new(conn))?;
    if status == 200 {
        Ok(())
    } else {
        Err(io::Error::other(format!("probe status {status}")))
    }
}

/// A running cluster: router + worker fleet + monitor.
/// [`Cluster::shutdown`] (or drop) stops everything and reaps every
/// child process.
pub struct Cluster {
    config: ClusterConfig,
    /// The dictionary artifact every (re)spawned worker loads.
    /// Starts as `config.dict`; a rolling restart onto a new artifact
    /// updates it, so the monitor's crash recovery stays on the new
    /// artifact too. Shared with the monitor thread.
    dict: Arc<Mutex<Option<String>>>,
    ring: Arc<Ring>,
    slots: Arc<Vec<Mutex<SlotState>>>,
    router: Option<Router>,
    monitor: Option<JoinHandle<()>>,
    stop_monitor: Arc<AtomicBool>,
    restarts: Arc<AtomicU64>,
}

impl Cluster {
    /// Spawns the fleet, waits for every worker's handshake, starts
    /// the router on `addr`, and starts the fleet monitor.
    pub fn start(addr: &str, config: ClusterConfig) -> io::Result<Cluster> {
        let n = config.workers.max(1);
        let ring = Arc::new(Ring::new(n, config.replication));
        let dict = Arc::new(Mutex::new(config.dict.clone()));
        let mut slots = Vec::with_capacity(n);
        for slot in 0..n {
            let proc = spawn_worker(&config, config.dict.as_deref())?;
            ring.publish(slot, proc.addr);
            slots.push(Mutex::new(SlotState::Running(proc)));
        }
        let slots = Arc::new(slots);
        let router = Router::start(addr, Arc::clone(&ring), config.router)?;
        let stop_monitor = Arc::new(AtomicBool::new(false));
        let restarts = Arc::new(AtomicU64::new(0));
        let monitor = {
            let ring = Arc::clone(&ring);
            let slots = Arc::clone(&slots);
            let stop = Arc::clone(&stop_monitor);
            let restarts = Arc::clone(&restarts);
            let config = config.clone();
            let dict = Arc::clone(&dict);
            std::thread::spawn(move || {
                monitor_loop(&ring, &slots, &stop, &restarts, &config, &dict)
            })
        };
        Ok(Cluster {
            config,
            dict,
            ring,
            slots,
            router: Some(router),
            monitor: Some(monitor),
            stop_monitor,
            restarts,
        })
    }

    /// The router's client-facing address.
    pub fn addr(&self) -> SocketAddr {
        self.router.as_ref().expect("router live").addr()
    }

    /// The routing table (for tests and diagnostics).
    pub fn ring(&self) -> &Arc<Ring> {
        &self.ring
    }

    /// Fleet size.
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Workers currently live in the ring.
    pub fn healthy_workers(&self) -> usize {
        self.ring.up_count()
    }

    /// Total automatic restarts performed by the monitor.
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::SeqCst)
    }

    /// Kills worker `slot` without ceremony — SIGKILL, no drain, ring
    /// untouched. This is the chaos hook: the router discovers the
    /// death through request failures (and fails over), the monitor
    /// discovers it through `try_wait` (and restarts with backoff) —
    /// the exact path a real worker crash takes.
    pub fn kill_worker(&self, slot: usize) {
        let mut state = self.slots[slot].lock().expect("slot poisoned");
        if let SlotState::Running(proc) = &mut *state {
            let _ = proc.child.kill();
            let _ = proc.child.wait();
        }
    }

    /// Blocks until at least `n` workers are live, or `timeout`
    /// elapses. Returns whether the fleet got there.
    pub fn wait_healthy(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.ring.up_count() >= n {
                return true;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.ring.up_count() >= n
    }

    /// Rebuilds the fleet one worker at a time with zero downtime:
    /// drain the slot from the ring, wait out its in-flight requests,
    /// stop the old process, spawn and handshake a replacement, then
    /// republish. With replication ≥ 2 (or the router's fallback scan)
    /// every query keeps a live worker throughout. Returns the number
    /// of workers swapped.
    pub fn rolling_restart(&self) -> io::Result<usize> {
        let dict = self.dict.lock().expect("dict artifact poisoned").clone();
        self.roll(dict.as_deref())
    }

    /// [`Cluster::rolling_restart`] onto a *different* dictionary
    /// artifact (`None` = the demo dictionary): the whole-fleet
    /// deployment step for a newly compiled artifact. Every
    /// replacement worker loads `dict`, and the override sticks — the
    /// monitor's automatic crash recovery respawns with the new
    /// artifact from here on, never regressing to the old one.
    pub fn rolling_restart_with_dict(&self, dict: Option<String>) -> io::Result<usize> {
        *self.dict.lock().expect("dict artifact poisoned") = dict.clone();
        self.roll(dict.as_deref())
    }

    fn roll(&self, dict: Option<&str>) -> io::Result<usize> {
        let mut swapped = 0;
        for slot in 0..self.slots.len() {
            // Holding the slot lock keeps the monitor (which only
            // try_locks) out of the whole drain→stop→spawn→publish
            // sequence.
            let mut state = self.slots[slot].lock().expect("slot poisoned");
            self.ring.take_down(slot);
            let drain_deadline = Instant::now() + Duration::from_secs(2);
            while self.ring.in_flight(slot) > 0 && Instant::now() < drain_deadline {
                std::thread::sleep(Duration::from_millis(2));
            }
            if let SlotState::Running(proc) = std::mem::replace(&mut *state, placeholder_backoff())
            {
                stop_worker(proc, Duration::from_secs(2));
            }
            let proc = spawn_worker(&self.config, dict)?;
            self.ring.publish(slot, proc.addr);
            *state = SlotState::Running(proc);
            swapped += 1;
        }
        Ok(swapped)
    }

    /// Stops the monitor, the router, and every worker; reaps all
    /// children. Returns once everything is down.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.stop_monitor.store(true, Ordering::SeqCst);
        if let Some(handle) = self.monitor.take() {
            let _ = handle.join();
        }
        if let Some(router) = self.router.take() {
            router.shutdown();
        }
        for (slot, state) in self.slots.iter().enumerate() {
            self.ring.take_down(slot);
            let mut state = state.lock().expect("slot poisoned");
            if let SlotState::Running(proc) = std::mem::replace(&mut *state, placeholder_backoff())
            {
                stop_worker(proc, Duration::from_secs(2));
            }
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// A `SlotState` to park in a slot while the real state is being
/// replaced (`std::mem::replace` needs *something* there).
fn placeholder_backoff() -> SlotState {
    SlotState::Backoff {
        until: Instant::now(),
        failures: 0,
    }
}

/// The fleet monitor: probe, reap, back off, restart, republish.
fn monitor_loop(
    ring: &Ring,
    slots: &[Mutex<SlotState>],
    stop: &AtomicBool,
    restarts: &AtomicU64,
    config: &ClusterConfig,
    dict: &Mutex<Option<String>>,
) {
    // A worker is declared unhealthy after this many consecutive
    // failed probes — one flaky probe under load must not cost a
    // restart.
    const PROBE_STRIKES: u32 = 3;
    while !stop.load(Ordering::SeqCst) {
        for (index, slot) in slots.iter().enumerate() {
            // The rolling restart holds slot locks across its whole
            // swap sequence; skipping a contended slot keeps the
            // monitor from ever stalling behind it.
            let Ok(mut state) = slot.try_lock() else {
                continue;
            };
            match &mut *state {
                SlotState::Running(proc) => {
                    let dead = matches!(proc.child.try_wait(), Ok(Some(_)) | Err(_));
                    if dead {
                        ring.take_down(index);
                        *state = SlotState::Backoff {
                            until: Instant::now()
                                + backoff_delay(1, config.backoff_base, config.backoff_max),
                            failures: 1,
                        };
                        continue;
                    }
                    match probe(proc.addr, config.router.upstream_timeout) {
                        Ok(()) => {
                            proc.probe_failures = 0;
                            // Self-healing: a slot the router drained
                            // after transient request failures is
                            // republished once it probes healthy.
                            if ring.addr_of(index).is_none() {
                                ring.publish(index, proc.addr);
                            }
                        }
                        Err(_) => {
                            proc.probe_failures += 1;
                            if proc.probe_failures >= PROBE_STRIKES {
                                ring.take_down(index);
                                if let SlotState::Running(proc) =
                                    std::mem::replace(&mut *state, placeholder_backoff())
                                {
                                    stop_worker(proc, Duration::from_millis(200));
                                }
                                *state = SlotState::Backoff {
                                    until: Instant::now()
                                        + backoff_delay(1, config.backoff_base, config.backoff_max),
                                    failures: 1,
                                };
                            }
                        }
                    }
                }
                SlotState::Backoff { until, failures } => {
                    if Instant::now() < *until {
                        continue;
                    }
                    let failures = *failures;
                    let artifact = dict.lock().expect("dict artifact poisoned").clone();
                    match spawn_worker(config, artifact.as_deref()) {
                        Ok(proc) => {
                            ring.publish(index, proc.addr);
                            *state = SlotState::Running(proc);
                            restarts.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(_) => {
                            let failures = failures + 1;
                            *state = SlotState::Backoff {
                                until: Instant::now()
                                    + backoff_delay(
                                        failures,
                                        config.backoff_base,
                                        config.backoff_max,
                                    ),
                                failures,
                            };
                        }
                    }
                }
            }
        }
        std::thread::sleep(config.probe_interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_from_base_and_caps_at_max() {
        let base = Duration::from_millis(50);
        let max = Duration::from_secs(2);
        assert_eq!(backoff_delay(1, base, max), Duration::from_millis(50));
        assert_eq!(backoff_delay(2, base, max), Duration::from_millis(100));
        assert_eq!(backoff_delay(3, base, max), Duration::from_millis(200));
        assert_eq!(backoff_delay(6, base, max), Duration::from_millis(1600));
        assert_eq!(backoff_delay(7, base, max), max);
        assert_eq!(backoff_delay(u32::MAX, base, max), max);
    }

    #[test]
    fn demo_dictionary_round_trips_through_tsv() {
        // Workers receive dictionaries as TSV artifacts; the demo
        // matcher must survive the round trip (it seeds the smoke
        // test's oracle).
        let tsv = demo_matcher().to_tsv();
        let back = DictHandle::from_tsv(&tsv).expect("parse").matcher();
        assert_eq!(back.len(), demo_matcher().len());
        assert!(back.fuzzy_config().is_some(), "fuzzy flag survives");
    }

    #[test]
    fn worker_flag_parser_rejects_unknown_flags() {
        // worker_main must fail fast (exit non-zero) on a bad flag
        // rather than serve with silently-dropped configuration.
        let code = worker_main(&["--frobnicate".to_string()]);
        assert_eq!(format!("{code:?}"), format!("{:?}", ExitCode::FAILURE));
    }
}
