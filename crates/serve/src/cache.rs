//! A shared-nothing sharded LRU result cache.
//!
//! Query logs are Zipfian: a small head of distinct queries carries
//! most of the traffic, so even a modest cache in front of the fuzzy
//! segmenter absorbs the expensive path almost entirely. The cache is
//! split into independently locked shards — a hit takes exactly one
//! shard mutex, so concurrent workers on different keys never
//! serialize — and each shard runs classic LRU over an intrusive
//! doubly-linked list on slot indices (no per-entry allocation beyond
//! the key).
//!
//! **Invalidation is by generation.** Every entry is stamped with the
//! cache generation it was computed at, and [`ShardedCache::get_at`]
//! only serves entries whose stamp matches the caller's snapshot.
//! Writers capture the generation together with their dictionary
//! snapshot and insert through [`ShardedCache::insert_at`], which
//! rejects the write (under the shard lock) once the generation has
//! moved on — a worker racing a dictionary change can therefore never
//! publish a result computed against the retired dictionary.
//!
//! The generation moves in two ways:
//!
//! - [`ShardedCache::invalidate`] — wholesale: bump the counter
//!   *before* clearing the shards (a base swap, where nothing old is
//!   trustworthy);
//! - [`ShardedCache::advance_generation`] — selective: bump the
//!   counter and keep the entries. Stale entries stop being served by
//!   `get_at`, but [`ShardedCache::get_at_or_promote`] can *promote*
//!   one — re-stamp it to the current generation and serve it — when
//!   the caller proves the dictionary changes since the entry's stamp
//!   cannot have altered its value (the `Engine` proves this with
//!   [`websyn_core::DeltaFootprint`]s). A small delta thus invalidates
//!   only the keys it touches; everything else is promoted on its next
//!   lookup instead of recomputed.

use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::BuildHasher;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Sentinel slot index for "no entry" in the intrusive LRU list.
const NIL: u32 = u32::MAX;

/// The promotion check threaded into generation-aware lookups: given
/// the entry's key and stamped generation, may it be re-stamped to the
/// current generation and served?
type PromoteCheck<'a> = &'a mut dyn FnMut(&str, u64) -> bool;

/// Aggregated cache counters, summed over all shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed (including lookups after an invalidation).
    pub misses: u64,
    /// Entries dropped to make room (not counting invalidations).
    pub evictions: u64,
    /// Live entries right now.
    pub entries: usize,
    /// Total capacity across shards.
    pub capacity: usize,
    /// Completed [`ShardedCache::invalidate`] calls.
    pub invalidations: u64,
    /// Stale entries re-stamped to the current generation by
    /// [`ShardedCache::get_at_or_promote`] instead of recomputed.
    pub promotions: u64,
}

impl CacheStats {
    /// Fraction of lookups served from cache (0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One LRU entry: the key (shared with the map), the cached value and
/// the intrusive recency links.
#[derive(Debug)]
struct Entry<V> {
    key: Arc<str>,
    value: V,
    /// Cache generation the value was computed at; compared (and
    /// possibly re-stamped) by the generation-aware lookups.
    generation: u64,
    /// Towards more-recently-used.
    prev: u32,
    /// Towards less-recently-used.
    next: u32,
}

/// A single-lock LRU shard.
///
/// Keys here are raw (normalized) client queries — untrusted input —
/// so the map uses std's randomly seeded SipHash, not the workspace's
/// `FxHashMap` (which `websyn_common::hash` explicitly forbids for
/// untrusted input in a networked service: an attacker could mine
/// Fx collisions and degrade a shard to linear scans under its lock).
#[derive(Debug)]
struct LruShard<V> {
    /// key → slot index in `slots`.
    map: HashMap<Arc<str>, u32, RandomState>,
    /// Entry slots; freed slots are recycled through `free`.
    slots: Vec<Option<Entry<V>>>,
    free: Vec<u32>,
    /// Most-recently-used slot (NIL when empty).
    head: u32,
    /// Least-recently-used slot (NIL when empty).
    tail: u32,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    promotions: u64,
}

impl<V: Clone> LruShard<V> {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::default(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
            promotions: 0,
        }
    }

    fn entry(&self, i: u32) -> &Entry<V> {
        self.slots[i as usize].as_ref().expect("live slot")
    }

    fn entry_mut(&mut self, i: u32) -> &mut Entry<V> {
        self.slots[i as usize].as_mut().expect("live slot")
    }

    /// Detaches slot `i` from the recency list.
    fn unlink(&mut self, i: u32) {
        let (prev, next) = {
            let e = self.entry(i);
            (e.prev, e.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.entry_mut(p).next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.entry_mut(n).prev = prev,
        }
    }

    /// Attaches slot `i` as the most-recently-used entry.
    fn push_front(&mut self, i: u32) {
        let old_head = self.head;
        {
            let e = self.entry_mut(i);
            e.prev = NIL;
            e.next = old_head;
        }
        match old_head {
            NIL => self.tail = i,
            h => self.entry_mut(h).prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, key: &str) -> Option<V> {
        match self.map.get(key).copied() {
            Some(i) => {
                self.hits += 1;
                self.unlink(i);
                self.push_front(i);
                Some(self.entry(i).value.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Generation-aware lookup: entries stamped with a different
    /// generation are not served. An *older* entry can be rescued by
    /// `promote`: if the callback (given the key and the entry's
    /// stamp) returns `true`, the entry is re-stamped to `generation`
    /// and served as a hit. Stale entries that are not promoted stay
    /// in place (untouched recency) until overwritten or evicted.
    fn get_at(
        &mut self,
        generation: u64,
        key: &str,
        promote: Option<PromoteCheck<'_>>,
    ) -> Option<V> {
        let Some(&i) = self.map.get(key) else {
            self.misses += 1;
            return None;
        };
        let stamped = self.entry(i).generation;
        if stamped != generation {
            let promoted = match promote {
                Some(check) if stamped < generation => {
                    let key = Arc::clone(&self.entry(i).key);
                    check(&key, stamped)
                }
                _ => false,
            };
            if !promoted {
                self.misses += 1;
                return None;
            }
            self.entry_mut(i).generation = generation;
            self.promotions += 1;
        }
        self.hits += 1;
        self.unlink(i);
        self.push_front(i);
        Some(self.entry(i).value.clone())
    }

    // Capacity is always >= 1 (ShardedCache::new clamps), so eviction
    // below can assume a live tail once the shard is full.
    fn insert(&mut self, key: &str, value: V, generation: u64) {
        if let Some(&i) = self.map.get(key) {
            let e = self.entry_mut(i);
            e.value = value;
            e.generation = generation;
            self.unlink(i);
            self.push_front(i);
            return;
        }
        if self.map.len() >= self.capacity {
            // Evict the least-recently-used entry.
            let victim = self.tail;
            self.unlink(victim);
            let entry = self.slots[victim as usize].take().expect("live tail");
            self.map.remove(&entry.key);
            self.free.push(victim);
            self.evictions += 1;
        }
        let key: Arc<str> = Arc::from(key);
        let slot = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(Entry {
                    key: Arc::clone(&key),
                    value,
                    generation,
                    prev: NIL,
                    next: NIL,
                });
                i
            }
            None => {
                let i = u32::try_from(self.slots.len()).expect("cache shard overflow");
                self.slots.push(Some(Entry {
                    key: Arc::clone(&key),
                    value,
                    generation,
                    prev: NIL,
                    next: NIL,
                }));
                i
            }
        };
        self.map.insert(key, slot);
        self.push_front(slot);
    }

    fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// A sharded LRU cache from normalized query strings to values.
///
/// `V` is cloned out on hits, so callers store cheap handles
/// (`Arc<Vec<MatchSpan>>` in the serving engine).
///
/// # Examples
///
/// ```
/// use websyn_serve::ShardedCache;
///
/// let cache: ShardedCache<u32> = ShardedCache::new(4, 1024);
/// let gen = cache.generation();
/// assert_eq!(cache.get("indy 4"), None);
/// assert!(cache.insert_at(gen, "indy 4", 7));
/// assert_eq!(cache.get_at(gen, "indy 4"), Some(7));
///
/// // Selective: the entry survives the bump, hidden until promoted.
/// let next = cache.advance_generation();
/// assert_eq!(cache.get_at(next, "indy 4"), None);
/// assert_eq!(
///     cache.get_at_or_promote(next, "indy 4", |_key, _stamp| true),
///     Some(7),
/// );
/// assert_eq!(cache.get_at(next, "indy 4"), Some(7), "re-stamped");
///
/// // Wholesale: everything is dropped, stale writers rejected.
/// cache.invalidate();
/// assert_eq!(cache.get("indy 4"), None);
/// assert!(!cache.insert_at(next, "indy 4", 7), "stale generation");
/// ```
#[derive(Debug)]
pub struct ShardedCache<V> {
    shards: Box<[Mutex<LruShard<V>>]>,
    /// Per-process random SipHash seed for shard selection (see
    /// [`LruShard`] on why keys are never Fx-hashed here).
    shard_seed: RandomState,
    generation: AtomicU64,
    invalidations: AtomicU64,
}

impl<V: Clone> ShardedCache<V> {
    /// Creates a cache of `total_capacity` entries spread over
    /// `shards` independently locked shards (both clamped to ≥ 1;
    /// per-shard capacity is the ceiling split, so the usable total is
    /// at least `total_capacity`).
    pub fn new(shards: usize, total_capacity: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = total_capacity.max(1).div_ceil(shards);
        let shards: Vec<Mutex<LruShard<V>>> = (0..shards)
            .map(|_| Mutex::new(LruShard::new(per_shard)))
            .collect();
        Self {
            shards: shards.into_boxed_slice(),
            shard_seed: RandomState::new(),
            generation: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Total capacity across shards.
    pub fn capacity(&self) -> usize {
        self.shards.len()
            * self.shards[0]
                .lock()
                .expect("cache shard poisoned")
                .capacity
    }

    /// The current generation. Capture this together with the
    /// dictionary snapshot, and pass it back to
    /// [`ShardedCache::insert_at`].
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    fn shard_of(&self, key: &str) -> &Mutex<LruShard<V>> {
        // Seeded SipHash for the same reason as the shard maps: shard
        // choice must not be predictable from the key alone, or an
        // attacker could funnel all traffic onto one shard lock.
        let i = (self.shard_seed.hash_one(key) >> 32) as usize % self.shards.len();
        &self.shards[i]
    }

    /// Looks `key` up, refreshing its recency on a hit.
    pub fn get(&self, key: &str) -> Option<V> {
        self.shard_of(key)
            .lock()
            .expect("cache shard poisoned")
            .get(key)
    }

    /// Looks `key` up, serving only entries stamped exactly at
    /// `generation` — the read-side counterpart of
    /// [`ShardedCache::insert_at`]. A stale caller (the global counter
    /// moved past its snapshot) and a stale entry (stamped before an
    /// [`ShardedCache::advance_generation`]) both count as misses, so
    /// hit-rate statistics never credit results from a retired
    /// dictionary. The comparisons run under the shard lock: a
    /// matching stamp proves no dictionary change slipped between the
    /// caller's snapshot and this lookup.
    pub fn get_at(&self, generation: u64, key: &str) -> Option<V> {
        let mut shard = self.shard_of(key).lock().expect("cache shard poisoned");
        if self.generation.load(Ordering::Acquire) != generation {
            shard.misses += 1;
            return None;
        }
        shard.get_at(generation, key, None)
    }

    /// Like [`ShardedCache::get_at`], but gives entries stamped at an
    /// *older* generation a second chance: `promote(key, stamp)` is
    /// called under the shard lock, and a `true` re-stamps the entry
    /// to `generation` and serves it as a hit (counted in
    /// [`CacheStats::promotions`]). The caller's contract is that a
    /// promotion is only approved when every dictionary change between
    /// `stamp` and `generation` provably leaves this key's result
    /// unchanged — the serving engine checks the key against the
    /// [`websyn_core::DeltaFootprint`] of each intervening delta.
    pub fn get_at_or_promote(
        &self,
        generation: u64,
        key: &str,
        mut promote: impl FnMut(&str, u64) -> bool,
    ) -> Option<V> {
        let mut shard = self.shard_of(key).lock().expect("cache shard poisoned");
        if self.generation.load(Ordering::Acquire) != generation {
            shard.misses += 1;
            return None;
        }
        shard.get_at(generation, key, Some(&mut promote))
    }

    /// Inserts `key → value` if the cache is still at `generation`.
    /// Returns whether the value was stored: a `false` means an
    /// [`ShardedCache::invalidate`] completed since the caller captured
    /// the generation, and the value (computed against the retired
    /// dictionary) was discarded. The check runs under the shard lock,
    /// and invalidation bumps the generation *before* clearing, so a
    /// stale value can never survive the sweep.
    pub fn insert_at(&self, generation: u64, key: &str, value: V) -> bool {
        let mut shard = self.shard_of(key).lock().expect("cache shard poisoned");
        if self.generation.load(Ordering::Acquire) != generation {
            return false;
        }
        shard.insert(key, value, generation);
        true
    }

    /// Retires the current generation *without* dropping entries.
    /// Returns the new generation. Existing entries keep their old
    /// stamp: invisible to [`ShardedCache::get_at`], but recoverable
    /// through [`ShardedCache::get_at_or_promote`], and reclaimed by
    /// normal LRU eviction otherwise. This is the cheap invalidation
    /// for a small dictionary delta, where most cached results are
    /// still correct and only the keys the delta touches must miss.
    pub fn advance_generation(&self) -> u64 {
        self.generation.fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Drops every entry and retires the current generation, so
    /// in-flight [`ShardedCache::insert_at`] writers holding the old
    /// generation are rejected.
    pub fn invalidate(&self) {
        // Bump first: a writer that passes its generation check while
        // we sweep holds a shard lock we have not reached yet, and its
        // entry is removed when we do.
        self.generation.fetch_add(1, Ordering::AcqRel);
        for shard in &self.shards {
            shard.lock().expect("cache shard poisoned").clear();
        }
        self.invalidations.fetch_add(1, Ordering::AcqRel);
    }

    /// Number of live entries (sums shard sizes; O(shards)).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// Whether no entry is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated counters over all shards.
    pub fn stats(&self) -> CacheStats {
        let mut out = CacheStats {
            invalidations: self.invalidations.load(Ordering::Acquire),
            ..CacheStats::default()
        };
        for shard in &self.shards {
            let s = shard.lock().expect("cache shard poisoned");
            out.hits += s.hits;
            out.misses += s.misses;
            out.evictions += s.evictions;
            out.promotions += s.promotions;
            out.entries += s.map.len();
            out.capacity += s.capacity;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A single-shard cache, so recency order is fully observable.
    fn one_shard(capacity: usize) -> ShardedCache<u32> {
        ShardedCache::new(1, capacity)
    }

    #[test]
    fn eviction_is_lru_and_get_refreshes_recency() {
        let c = one_shard(3);
        let g = c.generation();
        c.insert_at(g, "a", 1);
        c.insert_at(g, "b", 2);
        c.insert_at(g, "c", 3);
        // Touch "a": recency becomes a > c > b.
        assert_eq!(c.get("a"), Some(1));
        c.insert_at(g, "d", 4);
        assert_eq!(c.get("b"), None, "least-recently-used entry evicted");
        assert_eq!(c.get("a"), Some(1));
        assert_eq!(c.get("c"), Some(3));
        assert_eq!(c.get("d"), Some(4));
        let stats = c.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 3);
    }

    #[test]
    fn eviction_chain_walks_recency_order() {
        let c = one_shard(2);
        let g = c.generation();
        c.insert_at(g, "a", 1);
        c.insert_at(g, "b", 2);
        c.insert_at(g, "c", 3); // evicts a
        c.insert_at(g, "d", 4); // evicts b
        assert_eq!(c.get("a"), None);
        assert_eq!(c.get("b"), None);
        assert_eq!(c.get("c"), Some(3));
        assert_eq!(c.get("d"), Some(4));
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let c = one_shard(2);
        let g = c.generation();
        c.insert_at(g, "a", 1);
        c.insert_at(g, "b", 2);
        c.insert_at(g, "a", 10); // refresh, not a new entry
        c.insert_at(g, "c", 3); // evicts b (a was refreshed)
        assert_eq!(c.get("a"), Some(10));
        assert_eq!(c.get("b"), None);
        assert_eq!(c.get("c"), Some(3));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn invalidate_clears_and_rejects_stale_inserts() {
        let c = ShardedCache::new(4, 64);
        let old = c.generation();
        assert!(c.insert_at(old, "x", 1));
        assert_eq!(c.get("x"), Some(1));
        c.invalidate();
        assert_eq!(c.get("x"), None);
        assert!(c.is_empty());
        // A writer that snapshotted before the swap must be rejected.
        assert!(!c.insert_at(old, "x", 1));
        assert_eq!(c.get("x"), None);
        // A fresh snapshot writes fine.
        assert!(c.insert_at(c.generation(), "x", 2));
        assert_eq!(c.get("x"), Some(2));
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn keys_spread_over_shards() {
        let c = ShardedCache::new(8, 8 * 64);
        let g = c.generation();
        for i in 0..256 {
            assert!(c.insert_at(g, &format!("query number {i}"), i));
        }
        assert_eq!(c.len(), 256);
        // Every key still resolves through its shard.
        for i in 0..256 {
            assert_eq!(c.get(&format!("query number {i}")), Some(i));
        }
        let stats = c.stats();
        assert_eq!(stats.hits, 256);
        assert_eq!(stats.capacity, 8 * 64);
        assert!((stats.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_zero_clamps_to_one_entry() {
        // There is no "cache off" mode: capacity clamps to >= 1 per
        // shard, so a requested capacity of 0 degrades to a one-entry
        // cache that keeps only the most recent insert.
        let c: ShardedCache<u32> = ShardedCache::new(1, 0);
        assert_eq!(c.capacity(), 1);
        let g = c.generation();
        assert!(c.insert_at(g, "a", 1));
        assert!(c.insert_at(g, "b", 2));
        assert_eq!(c.len(), 1, "capacity 1 holds exactly one entry");
        assert_eq!(c.get("a"), None);
        assert_eq!(c.get("b"), Some(2));
    }

    #[test]
    fn advance_generation_hides_but_keeps_entries() {
        let c = one_shard(8);
        let g = c.generation();
        c.insert_at(g, "a", 1);
        c.insert_at(g, "b", 2);
        let next = c.advance_generation();
        assert_eq!(next, g + 1);
        // get_at at the new generation misses, but the entries live on.
        assert_eq!(c.get_at(next, "a"), None);
        assert_eq!(c.len(), 2, "entries survive the bump");
        // A stale caller still holding g is rejected outright.
        assert_eq!(c.get_at(g, "a"), None);
        assert!(!c.insert_at(g, "c", 3));
        // Overwriting re-stamps, so the key is live again.
        assert!(c.insert_at(next, "a", 10));
        assert_eq!(c.get_at(next, "a"), Some(10));
    }

    #[test]
    fn promote_restamps_only_approved_entries() {
        let c = one_shard(8);
        let g = c.generation();
        c.insert_at(g, "touched", 1);
        c.insert_at(g, "untouched", 2);
        let next = c.advance_generation();
        // The promote callback sees the key and the entry's old stamp.
        let hit = c.get_at_or_promote(next, "untouched", |key, stamp| {
            assert_eq!((key, stamp), ("untouched", g));
            true
        });
        assert_eq!(hit, Some(2));
        // Promotion is sticky: a plain get_at now hits.
        assert_eq!(c.get_at(next, "untouched"), Some(2));
        // A rejected promotion stays a miss, entry left in place.
        assert_eq!(c.get_at_or_promote(next, "touched", |_, _| false), None);
        assert_eq!(c.get_at(next, "touched"), None);
        assert_eq!(c.len(), 2);
        let s = c.stats();
        assert_eq!(s.promotions, 1);
    }

    #[test]
    fn promote_never_runs_for_missing_or_current_entries() {
        let c = one_shard(8);
        let g = c.generation();
        c.insert_at(g, "a", 1);
        // Current-generation hit: promote must not be consulted.
        assert_eq!(
            c.get_at_or_promote(g, "a", |_, _| panic!("promote called on a fresh entry")),
            Some(1)
        );
        // Absent key: promote must not be consulted either.
        assert_eq!(
            c.get_at_or_promote(g, "zzz", |_, _| panic!("promote called on a miss")),
            None
        );
        assert_eq!(c.stats().promotions, 0);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let c = one_shard(8);
        let g = c.generation();
        assert_eq!(c.get("a"), None);
        c.insert_at(g, "a", 1);
        assert_eq!(c.get("a"), Some(1));
        assert_eq!(c.get("a"), Some(1));
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
