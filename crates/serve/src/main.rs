//! `websyn-serve` — the serving binary.
//!
//! Serves an entity dictionary over a pluggable transport: the line
//! protocol of [`websyn_serve::proto`] (default) or the std-only
//! HTTP/1.1 front end of [`websyn_serve::http`]:
//!
//! ```sh
//! websyn-serve --addr 127.0.0.1:7878 --dict dictionary.tsv
//! printf 'indy 4 near san fran\n' | nc 127.0.0.1 7878
//!
//! websyn-serve --proto http --addr 127.0.0.1:8080 --dict dictionary.tsv
//! curl 'http://127.0.0.1:8080/match?q=indy+4+near+san+fran'
//! ```
//!
//! `--dict` loads an `EntityMatcher::to_tsv` artifact (the `#!fuzzy`
//! header re-enables approximate matching); without it a small built-in
//! demo dictionary is served, with fuzzy matching on.
//!
//! `--smoke` runs the CI self-test instead of serving: start on an
//! ephemeral port, round-trip exact, fuzzy, pipelined and control
//! requests against a live socket — over *both* protocols — shut down
//! cleanly, and exit 0 only if every response matched.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use websyn_core::DictHandle;
use websyn_serve::cluster::{load_dict, run_worker_if_flagged, Cluster, ClusterConfig};
use websyn_serve::{http, Engine, EngineConfig, HttpProtocol, Protocol, Server, ServerConfig};

/// Parsed command line.
struct Args {
    addr: String,
    dict: Option<String>,
    smoke: bool,
    http: bool,
    /// `--cluster N`: serve through a router over N worker processes
    /// instead of one in-process server (HTTP only).
    cluster: usize,
    replication: usize,
    server: ServerConfig,
    engine: EngineConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        dict: None,
        smoke: false,
        http: false,
        cluster: 0,
        replication: 2,
        server: ServerConfig::default(),
        engine: EngineConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--dict" => args.dict = Some(value("--dict")?),
            "--smoke" => args.smoke = true,
            "--proto" => {
                args.http = match value("--proto")?.as_str() {
                    "http" => true,
                    "line" => false,
                    other => return Err(format!("unknown protocol {other:?} (line|http)")),
                }
            }
            "--cluster" => args.cluster = parse(&value("--cluster")?)?,
            "--replication" => args.replication = parse(&value("--replication")?)?,
            "--workers" => args.server.workers = parse(&value("--workers")?)?,
            "--queue-depth" => args.server.queue_depth = parse(&value("--queue-depth")?)?,
            "--batch-max" => args.server.batch_max = parse(&value("--batch-max")?)?,
            "--batch-window-us" => {
                args.server.batch_window =
                    Duration::from_micros(parse(&value("--batch-window-us")?)?)
            }
            "--cache-capacity" => args.engine.cache_capacity = parse(&value("--cache-capacity")?)?,
            "--cache-shards" => args.engine.cache_shards = parse(&value("--cache-shards")?)?,
            "--slow-threshold-us" => {
                args.server.slow_threshold =
                    Duration::from_micros(parse(&value("--slow-threshold-us")?)?)
            }
            "--slow-sample-every" => {
                args.server.slow_sample_every = parse(&value("--slow-sample-every")?)?
            }
            "--help" | "-h" => {
                return Err(
                    "usage: websyn-serve [--proto line|http] [--addr A] [--dict F.tsv] \
                     [--cluster N] [--replication N] \
                     [--workers N] [--queue-depth N] [--batch-max N] [--batch-window-us N] \
                     [--cache-capacity N] [--cache-shards N] \
                     [--slow-threshold-us N] [--slow-sample-every N] [--smoke]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number {s:?}"))
}

fn main() -> ExitCode {
    // Re-entered as a cluster worker? Serve and exit — the rest of the
    // command line belongs to the worker.
    if let Some(code) = run_worker_if_flagged() {
        return code;
    }
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let dict = match load_dict(args.dict.as_deref()) {
        Ok(d) => d,
        Err(msg) => {
            eprintln!("websyn-serve: {msg}");
            return ExitCode::FAILURE;
        }
    };
    {
        let matcher = dict.matcher();
        eprintln!(
            "websyn-serve: {} surfaces, fuzzy {}",
            matcher.len(),
            if matcher.fuzzy_config().is_some() {
                "on"
            } else {
                "off"
            }
        );
    }

    if args.smoke {
        // The smoke test always exercises both protocols — they share
        // the machinery, so both must pass regardless of which one the
        // binary would serve. Each gets its own handle (and so its own
        // delta lifecycle) over the same loaded base dictionary.
        let fresh = || DictHandle::new((*dict.matcher()).clone());
        let result = smoke_line(engine(&fresh(), args.engine), args.server)
            .and_then(|()| smoke_http(engine(&fresh(), args.engine), args.server));
        return match result {
            Ok(()) => {
                println!("websyn-serve: smoke ok (line + http)");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("websyn-serve: SMOKE FAILED: {msg}");
                ExitCode::FAILURE
            }
        };
    }

    if args.cluster > 0 {
        // Cluster mode: a router over worker processes, each re-execing
        // this binary with the worker sentinel. The tuning flags travel
        // to the workers; the router itself holds no engine.
        let config = ClusterConfig {
            workers: args.cluster,
            replication: args.replication,
            dict: args.dict.clone(),
            worker_args: worker_args(&args),
            ..ClusterConfig::default()
        };
        let cluster = match Cluster::start(args.addr.as_str(), config) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("websyn-serve: cannot start cluster on {}: {e}", args.addr);
                return ExitCode::FAILURE;
            }
        };
        eprintln!(
            "websyn-serve: routing on {} over {} workers (replication {})",
            cluster.addr(),
            cluster.workers(),
            args.replication
        );
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }

    let protocol: Arc<dyn Protocol> = if args.http {
        Arc::new(HttpProtocol)
    } else {
        Arc::new(websyn_serve::LineProtocol)
    };
    let server = match Server::start_with(
        engine(&dict, args.engine),
        args.addr.as_str(),
        args.server,
        Arc::clone(&protocol),
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("websyn-serve: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "websyn-serve: listening on {} ({})",
        server.addr(),
        protocol.name()
    );
    // Serve until the process is killed; all work happens on the
    // accept/worker threads.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn engine(dict: &DictHandle, config: EngineConfig) -> Arc<Engine> {
    // The handle is shared, not copied: deltas applied through the
    // admin surface are visible to every engine built from it.
    Arc::new(
        Engine::builder_with_dict(dict.clone())
            .config(config)
            .build(),
    )
}

/// The per-worker tuning flags of a `--cluster` run, forwarded to each
/// worker process (`--dict` is handled by [`ClusterConfig`] itself).
fn worker_args(args: &Args) -> Vec<String> {
    vec![
        "--workers".into(),
        args.server.workers.to_string(),
        "--queue-depth".into(),
        args.server.queue_depth.to_string(),
        "--batch-max".into(),
        args.server.batch_max.to_string(),
        "--batch-window-us".into(),
        args.server.batch_window.as_micros().to_string(),
        "--cache-capacity".into(),
        args.engine.cache_capacity.to_string(),
        "--cache-shards".into(),
        args.engine.cache_shards.to_string(),
        "--slow-threshold-us".into(),
        args.server.slow_threshold.as_micros().to_string(),
        "--slow-sample-every".into(),
        args.server.slow_sample_every.to_string(),
    ]
}

/// One scripted client session against a live ephemeral-port line
/// server: exact hit, fuzzy hit, miss, pipelined burst, `#stats`, then
/// a clean shutdown. Any mismatch is an error.
fn smoke_line(engine: Arc<Engine>, config: ServerConfig) -> Result<(), String> {
    let io_err = |e: std::io::Error| format!("io error: {e}");
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", config).map_err(io_err)?;
    let addr = server.addr();
    {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        let mut reader = BufReader::new(stream.try_clone().map_err(io_err)?);
        let mut conn = stream;
        fn ask(
            conn: &mut TcpStream,
            reader: &mut BufReader<TcpStream>,
            request: &str,
        ) -> Result<String, String> {
            let io_err = |e: std::io::Error| format!("io error: {e}");
            writeln!(conn, "{request}").map_err(io_err)?;
            let mut line = String::new();
            reader.read_line(&mut line).map_err(io_err)?;
            Ok(line.trim_end().to_string())
        }

        let exact = ask(&mut conn, &mut reader, "Indy 4 near San Fran")?;
        if exact != "OK\t0,2,0,0,indy 4" {
            return Err(format!("exact: unexpected response {exact:?}"));
        }
        let fuzzy = ask(&mut conn, &mut reader, "cheapest cannon eos 350d deals")?;
        if fuzzy != "OK\t1,4,2,1,canon eos 350d" {
            return Err(format!("fuzzy: unexpected response {fuzzy:?}"));
        }
        let miss = ask(&mut conn, &mut reader, "nothing matches this")?;
        if miss != "OK" {
            return Err(format!("miss: unexpected response {miss:?}"));
        }

        // Pipelined burst: send everything, then read everything — the
        // server must answer in request order.
        let burst = ["indy 4", "350d", "madagascar 2", "indy 4"];
        for q in burst {
            writeln!(conn, "{q}").map_err(io_err)?;
        }
        for (i, q) in burst.iter().enumerate() {
            let mut line = String::new();
            reader.read_line(&mut line).map_err(io_err)?;
            if !line.starts_with("OK\t") {
                return Err(format!("pipelined {i} ({q}): got {line:?}"));
            }
        }
        // Sequential repeat of an already-answered query: its earlier
        // response has been received, so its cache insert has landed
        // and this one must hit deterministically (the duplicates
        // inside the burst may race across workers and both miss).
        let repeat = ask(&mut conn, &mut reader, "350d")?;
        if !repeat.starts_with("OK\t") {
            return Err(format!("repeat: unexpected response {repeat:?}"));
        }

        let stats = ask(&mut conn, &mut reader, "#stats")?;
        if !stats.starts_with("STATS\thits=") {
            return Err(format!("stats: unexpected response {stats:?}"));
        }
        let unknown = ask(&mut conn, &mut reader, "#frobnicate")?;
        if unknown != "ERR unknown-control" {
            return Err(format!("control: unexpected response {unknown:?}"));
        }
        // The observability verbs: the tab-folded Prometheus
        // exposition and the single-line slow-trace JSON.
        let metrics = ask(&mut conn, &mut reader, "#metrics")?;
        if !metrics.starts_with("METRICS\t# TYPE websyn_uptime_seconds gauge\t") {
            return Err(format!("metrics: unexpected response {metrics:?}"));
        }
        if !metrics.contains("websyn_stage_duration_us") {
            return Err("metrics: missing stage histograms".to_string());
        }
        let slow = ask(&mut conn, &mut reader, "#slow")?;
        if !slow.starts_with("SLOW\t{\"threshold_us\":") || !slow.ends_with("]}") {
            return Err(format!("slow: unexpected response {slow:?}"));
        }
        // Live dictionary update over the wire: the #dict verb carries
        // a delta (rows folded onto tabs) and the new surface must
        // resolve on the very next request — no restart.
        let before = ask(&mut conn, &mut reader, "starwars kid dance")?;
        if before != "OK" {
            return Err(format!("dict pre-delta: unexpected response {before:?}"));
        }
        let ack = ask(&mut conn, &mut reader, "#dict\tstarwars kid\t901")?;
        if !ack.starts_with("DICT\tapplied=1\tsegments=") {
            return Err(format!("dict: unexpected ack {ack:?}"));
        }
        let after = ask(&mut conn, &mut reader, "starwars kid dance")?;
        if after != "OK\t0,2,901,0,starwars kid" {
            return Err(format!("dict post-delta: unexpected response {after:?}"));
        }
        // And the stats line reports the lifecycle position.
        let stats = ask(&mut conn, &mut reader, "#stats")?;
        if !stats.contains("\tsegments=1\t") || !stats.contains("\tdelta_upserts=1\t") {
            return Err(format!("dict stats: lifecycle missing in {stats:?}"));
        }
    }
    // The sequential repeat of "350d" must have hit the cache.
    let stats = engine.cache_stats();
    if stats.hits == 0 {
        return Err("no cache hit recorded for the repeated query".to_string());
    }
    server.shutdown();
    Ok(())
}

/// The HTTP twin of [`smoke_line`]: the same exchanges as keep-alive
/// GETs on one connection — exact, fuzzy, miss, a pipelined burst,
/// `/stats`, an unknown endpoint — plus the JSON≡line sanity check.
fn smoke_http(engine: Arc<Engine>, config: ServerConfig) -> Result<(), String> {
    let io_err = |e: std::io::Error| format!("io error: {e}");
    let server = Server::start_with(
        Arc::clone(&engine),
        "127.0.0.1:0",
        config,
        Arc::new(HttpProtocol),
    )
    .map_err(io_err)?;
    let addr = server.addr();
    {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        let mut reader = BufReader::new(stream.try_clone().map_err(io_err)?);
        let mut conn = stream;
        fn get(
            conn: &mut TcpStream,
            reader: &mut BufReader<TcpStream>,
            target: &str,
        ) -> Result<(u16, String), String> {
            let io_err = |e: std::io::Error| format!("io error: {e}");
            write!(conn, "GET {target} HTTP/1.1\r\n\r\n").map_err(io_err)?;
            http::read_response(reader).map_err(io_err)
        }
        let ask = |conn: &mut TcpStream, reader: &mut BufReader<TcpStream>, query: &str| {
            get(
                conn,
                reader,
                &format!("/match?q={}", http::percent_encode(query)),
            )
        };

        let exact = ask(&mut conn, &mut reader, "Indy 4 near San Fran")?;
        let want = "{\"spans\":[{\"start\":0,\"end\":2,\"entity\":0,\"distance\":0,\"surface\":\"indy 4\"}]}";
        if exact != (200, want.to_string()) {
            return Err(format!("http exact: unexpected response {exact:?}"));
        }
        let fuzzy = ask(&mut conn, &mut reader, "cheapest cannon eos 350d deals")?;
        if fuzzy.0 != 200
            || !fuzzy
                .1
                .contains("\"distance\":1,\"surface\":\"canon eos 350d\"")
        {
            return Err(format!("http fuzzy: unexpected response {fuzzy:?}"));
        }
        let miss = ask(&mut conn, &mut reader, "nothing matches this")?;
        if miss != (200, "{\"spans\":[]}".to_string()) {
            return Err(format!("http miss: unexpected response {miss:?}"));
        }

        // Pipelined burst on the keep-alive connection: all requests
        // first, then all responses, in request order.
        let burst = ["indy 4", "350d", "madagascar 2", "indy 4"];
        for q in burst {
            write!(
                conn,
                "GET /match?q={} HTTP/1.1\r\n\r\n",
                http::percent_encode(q)
            )
            .map_err(io_err)?;
        }
        for (i, q) in burst.iter().enumerate() {
            let (status, body) = http::read_response(&mut reader).map_err(io_err)?;
            if status != 200 || !body.contains("\"entity\":") {
                return Err(format!("http pipelined {i} ({q}): got {status} {body:?}"));
            }
        }

        let (status, stats) = get(&mut conn, &mut reader, "/stats")?;
        if status != 200 || !stats.starts_with("{\"hits\":") {
            return Err(format!(
                "http stats: unexpected response {status} {stats:?}"
            ));
        }
        if !stats.contains("\"uptime_seconds\":") {
            return Err(format!("http stats: missing uptime_seconds in {stats:?}"));
        }
        // The observability endpoints must be live and well-formed:
        // traffic has flowed, so the stage histograms carry samples.
        let (status, metrics) = get(&mut conn, &mut reader, "/metrics")?;
        if status != 200
            || !metrics.contains("# TYPE websyn_stage_duration_us histogram")
            || !metrics.contains("websyn_uptime_seconds")
            || !metrics.contains("websyn_stage_duration_us_count{stage=\"segment\"}")
            || !metrics.contains("websyn_rejects_total{class=\"busy\"}")
        {
            return Err(format!("http metrics: malformed exposition {metrics:?}"));
        }
        let (status, slow) = get(&mut conn, &mut reader, "/debug/slow")?;
        if status != 200
            || !slow.starts_with("{\"threshold_us\":")
            || !slow.contains("\"entries\":[")
        {
            return Err(format!("http slow: malformed trace {slow:?}"));
        }
        let unknown = get(&mut conn, &mut reader, "/frobnicate")?;
        if unknown != (404, "{\"error\":\"not-found\"}".to_string()) {
            return Err(format!("http 404: unexpected response {unknown:?}"));
        }
        let bad = get(&mut conn, &mut reader, "/match")?;
        if bad.0 != 400 {
            return Err(format!("http 400: unexpected response {bad:?}"));
        }
        // Live dictionary update through the admin endpoint: POST the
        // delta, then resolve the new surface on the same connection —
        // applied before the 200 was written, no restart.
        let before = ask(&mut conn, &mut reader, "starwars kid dance")?;
        if before != (200, "{\"spans\":[]}".to_string()) {
            return Err(format!("http pre-delta: unexpected response {before:?}"));
        }
        let delta = "starwars kid\t901\n";
        write!(
            conn,
            "POST /admin/dict/delta HTTP/1.1\r\nContent-Length: {}\r\n\r\n{delta}",
            delta.len()
        )
        .map_err(io_err)?;
        let (status, ack) = http::read_response(&mut reader).map_err(io_err)?;
        if status != 200 || !ack.starts_with("{\"applied\":1,\"segments\":") {
            return Err(format!("http dict: unexpected ack {status} {ack:?}"));
        }
        let after = ask(&mut conn, &mut reader, "starwars kid dance")?;
        if after.0 != 200 || !after.1.contains("\"entity\":901") {
            return Err(format!("http post-delta: unexpected response {after:?}"));
        }
        // The stats body and the metrics exposition both report the
        // lifecycle position.
        let (_, stats) = get(&mut conn, &mut reader, "/stats")?;
        if !stats.contains("\"segments\":1,\"delta_upserts\":1") {
            return Err(format!("http dict stats: lifecycle missing in {stats:?}"));
        }
        let (_, metrics) = get(&mut conn, &mut reader, "/metrics")?;
        if !metrics.contains("websyn_dict_segments 1")
            || !metrics.contains("websyn_deltas_applied_total 1")
        {
            return Err(format!(
                "http dict metrics: lifecycle missing in {metrics:?}"
            ));
        }
        // The JSON body and the line rendering must describe the same
        // spans (shared cache entry, rendered together).
        let line = engine.resolve_line("indy 4");
        if !line.starts_with("OK\t0,2,0,0,indy 4") {
            return Err(format!("line view of cached entry diverged: {line:?}"));
        }
    }
    let stats = engine.cache_stats();
    if stats.hits == 0 {
        return Err("no http cache hit recorded".to_string());
    }
    server.shutdown();
    Ok(())
}
