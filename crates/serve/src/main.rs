//! `websyn-serve` — the serving binary.
//!
//! Serves an entity dictionary over the line protocol of
//! [`websyn_serve::proto`]:
//!
//! ```sh
//! websyn-serve --addr 127.0.0.1:7878 --dict dictionary.tsv
//! printf 'indy 4 near san fran\n' | nc 127.0.0.1 7878
//! ```
//!
//! `--dict` loads an `EntityMatcher::to_tsv` artifact (the `#!fuzzy`
//! header re-enables approximate matching); without it a small built-in
//! demo dictionary is served, with fuzzy matching on.
//!
//! `--smoke` runs the CI self-test instead of serving: start on an
//! ephemeral port, round-trip exact, fuzzy, pipelined and control
//! requests against a live socket, shut down cleanly, and exit 0 only
//! if every response matched.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use websyn_common::EntityId;
use websyn_core::{EntityMatcher, FuzzyConfig};
use websyn_serve::{Engine, EngineConfig, ServeConfig, Server};

/// Parsed command line.
struct Args {
    addr: String,
    dict: Option<String>,
    smoke: bool,
    serve: ServeConfig,
    engine: EngineConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".to_string(),
        dict: None,
        smoke: false,
        serve: ServeConfig::default(),
        engine: EngineConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--dict" => args.dict = Some(value("--dict")?),
            "--smoke" => args.smoke = true,
            "--workers" => args.serve.workers = parse(&value("--workers")?)?,
            "--queue-depth" => args.serve.queue_depth = parse(&value("--queue-depth")?)?,
            "--batch-max" => args.serve.batch_max = parse(&value("--batch-max")?)?,
            "--batch-window-us" => {
                args.serve.batch_window =
                    Duration::from_micros(parse(&value("--batch-window-us")?)?)
            }
            "--cache-capacity" => args.engine.cache_capacity = parse(&value("--cache-capacity")?)?,
            "--cache-shards" => args.engine.cache_shards = parse(&value("--cache-shards")?)?,
            "--help" | "-h" => {
                return Err(
                    "usage: websyn-serve [--addr A] [--dict F.tsv] [--workers N] \
                     [--queue-depth N] [--batch-max N] [--batch-window-us N] \
                     [--cache-capacity N] [--cache-shards N] [--smoke]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn parse<T: std::str::FromStr>(s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("bad number {s:?}"))
}

/// The built-in demo dictionary: the paper's running examples.
fn demo_matcher() -> EntityMatcher {
    EntityMatcher::from_pairs(vec![
        (
            "Indiana Jones and the Kingdom of the Crystal Skull",
            EntityId::new(0),
        ),
        ("indy 4", EntityId::new(0)),
        ("indiana jones 4", EntityId::new(0)),
        ("madagascar 2", EntityId::new(1)),
        ("madagascar escape 2 africa", EntityId::new(1)),
        ("canon eos 350d", EntityId::new(2)),
        ("digital rebel xt", EntityId::new(2)),
        ("350d", EntityId::new(2)),
    ])
    .with_fuzzy(FuzzyConfig::default())
}

fn load_matcher(dict: Option<&str>) -> Result<EntityMatcher, String> {
    match dict {
        None => Ok(demo_matcher()),
        Some(path) => {
            let tsv =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            EntityMatcher::from_tsv(&tsv).map_err(|e| format!("cannot parse {path}: {e}"))
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let matcher = match load_matcher(args.dict.as_deref()) {
        Ok(m) => m,
        Err(msg) => {
            eprintln!("websyn-serve: {msg}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "websyn-serve: {} surfaces, fuzzy {}",
        matcher.len(),
        if matcher.fuzzy_config().is_some() {
            "on"
        } else {
            "off"
        }
    );
    let engine = Arc::new(Engine::new(Arc::new(matcher), args.engine));

    if args.smoke {
        return match smoke(engine, args.serve) {
            Ok(()) => {
                println!("websyn-serve: smoke ok");
                ExitCode::SUCCESS
            }
            Err(msg) => {
                eprintln!("websyn-serve: SMOKE FAILED: {msg}");
                ExitCode::FAILURE
            }
        };
    }

    let server = match Server::start(engine, args.addr.as_str(), args.serve) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("websyn-serve: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!("websyn-serve: listening on {}", server.addr());
    // Serve until the process is killed; all work happens on the
    // accept/worker threads.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// One scripted client session against a live ephemeral-port server:
/// exact hit, fuzzy hit, miss, pipelined burst, `#stats`, then a clean
/// shutdown. Any mismatch is an error.
fn smoke(engine: Arc<Engine>, config: ServeConfig) -> Result<(), String> {
    let io_err = |e: std::io::Error| format!("io error: {e}");
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", config).map_err(io_err)?;
    let addr = server.addr();
    {
        let stream = TcpStream::connect(addr).map_err(io_err)?;
        let mut reader = BufReader::new(stream.try_clone().map_err(io_err)?);
        let mut conn = stream;
        fn ask(
            conn: &mut TcpStream,
            reader: &mut BufReader<TcpStream>,
            request: &str,
        ) -> Result<String, String> {
            let io_err = |e: std::io::Error| format!("io error: {e}");
            writeln!(conn, "{request}").map_err(io_err)?;
            let mut line = String::new();
            reader.read_line(&mut line).map_err(io_err)?;
            Ok(line.trim_end().to_string())
        }

        let exact = ask(&mut conn, &mut reader, "Indy 4 near San Fran")?;
        if exact != "OK\t0,2,0,0,indy 4" {
            return Err(format!("exact: unexpected response {exact:?}"));
        }
        let fuzzy = ask(&mut conn, &mut reader, "cheapest cannon eos 350d deals")?;
        if fuzzy != "OK\t1,4,2,1,canon eos 350d" {
            return Err(format!("fuzzy: unexpected response {fuzzy:?}"));
        }
        let miss = ask(&mut conn, &mut reader, "nothing matches this")?;
        if miss != "OK" {
            return Err(format!("miss: unexpected response {miss:?}"));
        }

        // Pipelined burst: send everything, then read everything — the
        // server must answer in request order.
        let burst = ["indy 4", "350d", "madagascar 2", "indy 4"];
        for q in burst {
            writeln!(conn, "{q}").map_err(io_err)?;
        }
        for (i, q) in burst.iter().enumerate() {
            let mut line = String::new();
            reader.read_line(&mut line).map_err(io_err)?;
            if !line.starts_with("OK\t") {
                return Err(format!("pipelined {i} ({q}): got {line:?}"));
            }
        }
        // Sequential repeat of an already-answered query: its earlier
        // response has been received, so its cache insert has landed
        // and this one must hit deterministically (the duplicates
        // inside the burst may race across workers and both miss).
        let repeat = ask(&mut conn, &mut reader, "350d")?;
        if !repeat.starts_with("OK\t") {
            return Err(format!("repeat: unexpected response {repeat:?}"));
        }

        let stats = ask(&mut conn, &mut reader, "#stats")?;
        if !stats.starts_with("STATS\thits=") {
            return Err(format!("stats: unexpected response {stats:?}"));
        }
        let unknown = ask(&mut conn, &mut reader, "#frobnicate")?;
        if unknown != "ERR unknown-control" {
            return Err(format!("control: unexpected response {unknown:?}"));
        }
    }
    // The sequential repeat of "350d" must have hit the cache.
    let stats = engine.cache_stats();
    if stats.hits == 0 {
        return Err("no cache hit recorded for the repeated query".to_string());
    }
    server.shutdown();
    Ok(())
}
