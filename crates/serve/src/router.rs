//! The cluster router: a thin std-only HTTP/1.1 proxy that
//! hash-partitions `GET /match?q=` traffic across worker processes.
//!
//! The router owns no matcher and no cache — it parses each client
//! request with the same [`HttpProtocol`] framing the workers speak,
//! hashes the *normalized* query (so encoding variants of one query
//! land on one worker's cache), and forwards the request over a
//! keep-alive upstream connection, reading the worker's answer with
//! [`crate::http::read_response`] — the exact client path the test
//! suite and benchmarks use.
//!
//! Placement is a static ring with hot-shard replication: a query whose
//! hash maps to home slot `h` may be served by any of the `replication`
//! slots `h, h+1, …` (mod the fleet size), and the router picks the
//! live candidate with the fewest requests in flight. Replication > 1
//! means a hot shard spreads over several workers *and* a drained or
//! dead worker's range stays covered by its neighbors — the property
//! the rolling-restart story relies on. When every candidate is down
//! the router falls back to scanning the whole ring, so a single
//! healthy worker keeps the service answering.
//!
//! Failure handling is per-request: an upstream IO error first retries
//! once on a fresh connection to the same worker (the keep-alive socket
//! may simply have been closed by a worker restart), then marks the
//! slot down — draining it from the ring until the fleet monitor
//! ([`crate::cluster`]) republishes it — and fails over to the next
//! candidate. GETs are idempotent, so retrying is safe; a client
//! request is only answered `503` when no worker at all can serve it.
//!
//! Control-plane requests bypass the ring hash: `/stats`, `/metrics`
//! and `/debug/slow` aggregate every live worker's answer, and
//! `POST /admin/dict/delta` fans the delta body out to the whole
//! fleet — `200` only when every live worker applied it, so a partial
//! (mixed-surface) fleet is never reported as a success. The router's
//! own `/metrics` view adds a `websyn_router_proxy_duration_us`
//! histogram of end-to-end proxy latency (pick → upstream exchange,
//! failovers included) under `worker="router"`.

use crate::http::{self, percent_encode, read_response};
use crate::protocol::{Protocol, Reject, Request};
use crate::HttpProtocol;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use websyn_obs::Histogram;

/// End-to-end latency of proxied `/match` requests, microseconds:
/// worker pick through upstream exchange, failovers included. A
/// process-wide static (like the reject counters) — the router is its
/// own process, so this is exactly its per-process series.
static PROXY_LATENCY_US: Histogram = Histogram::new();

/// One worker slot in the ring. `addr` is `None` while the slot is
/// drained (worker dead, backing off, or being swapped); `in_flight`
/// counts requests currently proxied to it, for least-loaded picks and
/// for the rolling restart's drain wait.
#[derive(Debug)]
struct Slot {
    addr: Mutex<Option<SocketAddr>>,
    in_flight: AtomicUsize,
}

/// The routing table shared by the router's connection handlers and
/// the fleet monitor: fixed slot count, per-slot liveness, hot-shard
/// replication factor.
#[derive(Debug)]
pub struct Ring {
    slots: Vec<Slot>,
    replication: usize,
}

impl Ring {
    /// A ring of `n` slots (all initially down) with the given
    /// replication factor (clamped to `1..=n`).
    pub fn new(n: usize, replication: usize) -> Self {
        let n = n.max(1);
        Self {
            slots: (0..n)
                .map(|_| Slot {
                    addr: Mutex::new(None),
                    in_flight: AtomicUsize::new(0),
                })
                .collect(),
            replication: replication.clamp(1, n),
        }
    }

    /// Number of slots (the fleet size, dead or alive).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the ring has no slots. (It never does — `new` clamps to
    /// one — but the conventional pair to `len` keeps lints quiet.)
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Marks `slot` live at `addr`. Called by the fleet when a worker
    /// reports ready.
    pub fn publish(&self, slot: usize, addr: SocketAddr) {
        *self.slots[slot].addr.lock().expect("ring poisoned") = Some(addr);
    }

    /// Drains `slot`: new requests stop routing to it immediately;
    /// requests already in flight finish against the still-running
    /// worker. Returns the address that was published, if any.
    pub fn take_down(&self, slot: usize) -> Option<SocketAddr> {
        self.slots[slot].addr.lock().expect("ring poisoned").take()
    }

    /// The published address of `slot`, if it is live.
    pub fn addr_of(&self, slot: usize) -> Option<SocketAddr> {
        *self.slots[slot].addr.lock().expect("ring poisoned")
    }

    /// How many slots are currently live.
    pub fn up_count(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.addr.lock().expect("ring poisoned").is_some())
            .count()
    }

    /// Requests in flight against `slot` right now.
    pub fn in_flight(&self, slot: usize) -> usize {
        self.slots[slot].in_flight.load(Ordering::SeqCst)
    }

    /// Picks the slot to serve a query with ring hash `hash`, avoiding
    /// the slots in `exclude` (already failed this request): the
    /// least-loaded live replica of the home slot, or — when the whole
    /// replica set is down — the first live slot scanning onward from
    /// home. Returns the slot index and its address.
    pub fn pick(&self, hash: u64, exclude: &[usize]) -> Option<(usize, SocketAddr)> {
        let n = self.slots.len();
        let home = (hash % n as u64) as usize;
        let candidate = |i: usize| -> Option<(usize, SocketAddr, usize)> {
            let slot = (home + i) % n;
            if exclude.contains(&slot) {
                return None;
            }
            let addr = self.addr_of(slot)?;
            Some((slot, addr, self.in_flight(slot)))
        };
        // Least in-flight among the live replicas…
        if let Some((slot, addr, _)) = (0..self.replication)
            .filter_map(candidate)
            .min_by_key(|&(_, _, load)| load)
        {
            return Some((slot, addr));
        }
        // …else the first live slot beyond the replica set.
        (self.replication..n)
            .filter_map(candidate)
            .next()
            .map(|(slot, addr, _)| (slot, addr))
    }
}

/// RAII in-flight accounting for one proxied request.
struct InFlight<'a> {
    ring: &'a Ring,
    slot: usize,
}

impl<'a> InFlight<'a> {
    fn enter(ring: &'a Ring, slot: usize) -> Self {
        ring.slots[slot].in_flight.fetch_add(1, Ordering::SeqCst);
        Self { ring, slot }
    }
}

impl Drop for InFlight<'_> {
    fn drop(&mut self) {
        self.ring.slots[self.slot]
            .in_flight
            .fetch_sub(1, Ordering::SeqCst);
    }
}

/// Router tuning. The defaults suit tests and the benchmark harness;
/// the binaries expose the interesting ones as flags.
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Per-request cap on a client protocol line (mirrors
    /// [`crate::ServerConfig::max_line_bytes`]).
    pub max_line_bytes: usize,
    /// Read/write timeout on upstream worker sockets — a hung worker
    /// costs at most this long before failover.
    pub upstream_timeout: Duration,
    /// Client-side read timeout; doubles as the shutdown poll interval.
    pub read_timeout: Duration,
    /// Maximum concurrently served client connections.
    pub max_connections: usize,
}

impl Default for RouterConfig {
    fn default() -> Self {
        Self {
            max_line_bytes: 64 * 1024,
            upstream_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_millis(25),
            max_connections: 1024,
        }
    }
}

/// A running router: accept loop + per-connection proxy threads.
/// [`Router::shutdown`] (or drop) stops and joins everything; worker
/// processes are not the router's to stop — that is
/// [`crate::cluster::Cluster`]'s job.
pub struct Router {
    addr: SocketAddr,
    ring: Arc<Ring>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl Router {
    /// Binds `addr` and starts proxying to the live slots of `ring`.
    pub fn start(addr: &str, ring: Arc<Ring>, config: RouterConfig) -> io::Result<Router> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let ring = Arc::clone(&ring);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || accept_loop(&listener, &ring, &shutdown, config))
        };
        Ok(Router {
            addr: local_addr,
            ring,
            shutdown,
            accept: Some(accept),
        })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The routing table — the fleet monitor publishes and drains
    /// slots through this.
    pub fn ring(&self) -> &Arc<Ring> {
        &self.ring
    }

    /// Stops accepting, drains handler threads, returns when all are
    /// joined.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(
    listener: &TcpListener,
    ring: &Arc<Ring>,
    shutdown: &Arc<AtomicBool>,
    config: RouterConfig,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                stream
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(_) => {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        handlers.retain(|h| !h.is_finished());
        if handlers.len() >= config.max_connections.max(1) {
            drop(stream);
            continue;
        }
        let ring = Arc::clone(ring);
        let shutdown = Arc::clone(shutdown);
        handlers.push(std::thread::spawn(move || {
            let _ = handle_client(stream, &ring, &shutdown, config);
        }));
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// One keep-alive upstream connection to a worker.
struct Upstream {
    conn: TcpStream,
    reader: BufReader<TcpStream>,
    addr: SocketAddr,
}

impl Upstream {
    fn connect(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        let conn = TcpStream::connect_timeout(&addr, timeout)?;
        conn.set_nodelay(true)?;
        conn.set_read_timeout(Some(timeout))?;
        conn.set_write_timeout(Some(timeout))?;
        let reader = BufReader::new(conn.try_clone()?);
        Ok(Self { conn, reader, addr })
    }

    /// One request/response exchange. `request_head` is a complete
    /// HTTP request head, CRLFs included.
    fn exchange(&mut self, request_head: &str) -> io::Result<(u16, String)> {
        self.conn.write_all(request_head.as_bytes())?;
        read_response(&mut self.reader)
    }
}

/// Maps the status codes the proxy relays back onto reason phrases —
/// `read_response` keeps only the code, and the reconstructed response
/// should read naturally in a browser's network tab.
fn reason_for(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Response",
    }
}

/// The ring hash of a query: over its *normalized* form, so `Indy+4`,
/// `indy%204` and `indy 4` all route to the same worker and share its
/// cache entries.
pub fn query_hash(query: &str) -> u64 {
    websyn_common::hash::fx_hash_one(&websyn_text::normalized(query).as_ref())
}

/// Serves one client connection: parse requests with the shared
/// [`HttpProtocol`] framing, proxy queries to workers, answer stats
/// and rejects locally. Synchronous per request — pipelined clients
/// are still answered in order because requests are processed in
/// arrival order on this one thread.
fn handle_client(
    stream: TcpStream,
    ring: &Arc<Ring>,
    shutdown: &Arc<AtomicBool>,
    config: RouterConfig,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let protocol = HttpProtocol;
    let mut parser = protocol.parser();
    // Keep-alive upstream connections, one per slot, reused across the
    // requests of this client connection.
    let mut upstreams: Vec<Option<Upstream>> = (0..ring.len()).map(|_| None).collect();
    let mut line: Vec<u8> = Vec::new();
    loop {
        if line.len() > config.max_line_bytes {
            crate::metrics::count_reject(Reject::TooLarge);
            let body = protocol.render_reject(Reject::TooLarge);
            writer.write_all(body.as_bytes())?;
            break;
        }
        let allowed = (config.max_line_bytes + 1 - line.len()) as u64;
        match (&mut reader).take(allowed).read_until(b'\n', &mut line) {
            Ok(0) => break,
            Ok(_) => {
                if line.last() != Some(&b'\n') {
                    continue;
                }
                line.pop();
                let Some(request) = parser.on_line(&line) else {
                    line.clear();
                    continue;
                };
                line.clear();
                let (response, close) = answer(&protocol, ring, &mut upstreams, request, config);
                writer.write_all(response.as_bytes())?;
                writer.flush()?;
                if close {
                    break;
                }
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    Ok(())
}

/// Produces the response for one parsed request and whether the
/// connection closes after it.
fn answer(
    protocol: &HttpProtocol,
    ring: &Ring,
    upstreams: &mut [Option<Upstream>],
    request: Request,
    config: RouterConfig,
) -> (String, bool) {
    match request {
        Request::Query { query, close } => (proxy_query(ring, upstreams, &query, config), close),
        Request::Stats { close } => (aggregate_stats(ring, config), close),
        Request::Metrics { close } => (aggregate_metrics(ring, config), close),
        Request::DebugSlow { close } => (aggregate_slow(ring, config), close),
        Request::DictDelta { body, close } => (fan_out_delta(ring, &body, config), close),
        Request::Reject { reject, close } => {
            crate::metrics::count_reject(reject);
            (protocol.render_reject(reject).to_string(), close)
        }
    }
}

/// Proxies one query: pick a worker, exchange, fail over on IO errors.
/// Answers `503` only when every slot has been tried and none could
/// serve. Records end-to-end latency into [`PROXY_LATENCY_US`].
fn proxy_query(
    ring: &Ring,
    upstreams: &mut [Option<Upstream>],
    query: &str,
    config: RouterConfig,
) -> String {
    let started = Instant::now();
    let response = proxy_query_inner(ring, upstreams, query, config);
    PROXY_LATENCY_US.record(crate::metrics::as_us(started.elapsed()));
    response
}

fn proxy_query_inner(
    ring: &Ring,
    upstreams: &mut [Option<Upstream>],
    query: &str,
    config: RouterConfig,
) -> String {
    let hash = query_hash(query);
    let head = format!("GET /match?q={} HTTP/1.1\r\n\r\n", percent_encode(query));
    let mut failed: Vec<usize> = Vec::new();
    while let Some((slot, addr)) = ring.pick(hash, &failed) {
        let _guard = InFlight::enter(ring, slot);
        match exchange_with(upstreams, slot, addr, &head, config) {
            Ok((status, body)) => return http::response(status, reason_for(status), &body),
            Err(_) => {
                // Both the cached connection and a fresh one failed:
                // the worker is gone or wedged. Drain it — the fleet
                // monitor restarts it and republishes — and fail over.
                ring.take_down(slot);
                failed.push(slot);
            }
        }
    }
    // No worker could serve: the router's own 503 counts in the busy
    // class (it is load/availability shedding, not a client error).
    crate::metrics::count_reject(Reject::Busy);
    http::response(503, "Service Unavailable", "{\"error\":\"unavailable\"}")
}

/// One exchange against `slot`, reusing its keep-alive connection when
/// possible. A failure on a *reused* connection is retried once on a
/// fresh connection before being reported: the cached socket may be a
/// stale keep-alive from before a worker restart, which is not
/// evidence the (possibly new) worker at `addr` is unhealthy.
fn exchange_with(
    upstreams: &mut [Option<Upstream>],
    slot: usize,
    addr: SocketAddr,
    head: &str,
    config: RouterConfig,
) -> io::Result<(u16, String)> {
    if let Some(upstream) = upstreams[slot].as_mut() {
        if upstream.addr == addr {
            match upstream.exchange(head) {
                Ok(response) => return Ok(response),
                Err(_) => upstreams[slot] = None,
            }
        } else {
            // The slot was restarted onto a new port: the cached
            // connection is to the old process.
            upstreams[slot] = None;
        }
    }
    let mut fresh = Upstream::connect(addr, config.upstream_timeout)?;
    let response = fresh.exchange(head)?;
    upstreams[slot] = Some(fresh);
    Ok(response)
}

/// Extracts an unsigned integer field from a worker's fixed-format
/// `/stats` JSON body. The serializer is ours ([`http::stats_json`]),
/// so a split-based parse is exact.
fn stats_field(body: &str, key: &str) -> u64 {
    let pattern = format!("\"{key}\":");
    body.find(&pattern)
        .map(|at| {
            body[at + pattern.len()..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
        })
        .and_then(|digits| digits.parse().ok())
        .unwrap_or(0)
}

/// Fetches `path` from every live slot in turn, yielding each `200`
/// body with its slot index. Uses fresh connections — control-plane
/// reads are rare, and probing through the request path would distort
/// in-flight accounting.
fn fetch_from_workers(ring: &Ring, config: RouterConfig, path: &str) -> Vec<(usize, String)> {
    let head = format!("GET {path} HTTP/1.1\r\n\r\n");
    let mut bodies = Vec::new();
    for slot in 0..ring.len() {
        let Some(addr) = ring.addr_of(slot) else {
            continue;
        };
        let Ok(mut upstream) = Upstream::connect(addr, config.upstream_timeout) else {
            continue;
        };
        let Ok((200, body)) = upstream.exchange(&head) else {
            continue;
        };
        bodies.push((slot, body));
    }
    bodies
}

/// Fans a dictionary delta out to the whole fleet: every live worker
/// gets the body over a fresh connection (control-plane writes are
/// rare, and the request path's keep-alive accounting should not see
/// them). The fleet answer is `200` only when *every* live worker
/// applied the delta — a partial application leaves the fleet serving
/// mixed surfaces, which the caller must see (and can repair by
/// retrying: delta ops are idempotent upserts/tombstones). When every
/// worker refused with one status (e.g. a malformed delta's unanimous
/// `400`), that status is relayed; mixed or transport failures answer
/// `503`.
fn fan_out_delta(ring: &Ring, body: &str, config: RouterConfig) -> String {
    use std::fmt::Write;
    let head = format!(
        "POST /admin/dict/delta HTTP/1.1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len(),
    );
    let mut applied = 0usize;
    let mut statuses: Vec<u16> = Vec::new();
    let mut per_worker = String::new();
    for slot in 0..ring.len() {
        let Some(addr) = ring.addr_of(slot) else {
            continue;
        };
        let outcome = Upstream::connect(addr, config.upstream_timeout)
            .and_then(|mut upstream| upstream.exchange(&head));
        if !per_worker.is_empty() {
            per_worker.push(',');
        }
        match outcome {
            Ok((200, ack)) => {
                applied += 1;
                statuses.push(200);
                let _ = write!(
                    per_worker,
                    "{{\"worker\":{slot},\"ok\":true,\"ack\":{ack}}}"
                );
            }
            Ok((status, _)) => {
                statuses.push(status);
                let _ = write!(
                    per_worker,
                    "{{\"worker\":{slot},\"ok\":false,\"status\":{status}}}"
                );
            }
            Err(_) => {
                statuses.push(0);
                let _ = write!(
                    per_worker,
                    "{{\"worker\":{slot},\"ok\":false,\"status\":0}}"
                );
            }
        }
    }
    let targeted = statuses.len();
    let ok = targeted > 0 && applied == targeted;
    let response_body = format!(
        "{{\"ok\":{ok},\"applied_workers\":{applied},\"targeted_workers\":{targeted},\"per_worker\":[{per_worker}]}}"
    );
    let status = if ok {
        200
    } else if targeted > 0 && statuses[0] != 0 && statuses.iter().all(|&s| s == statuses[0]) {
        statuses[0]
    } else {
        503
    };
    http::response(status, reason_for(status), &response_body)
}

/// The summed-field keys of the worker `/stats` grammar, in response
/// order (shared by the fleet totals and the per-worker breakdown).
/// `epoch` is deliberately absent: summing per-base commit positions
/// across workers is meaningless.
const STATS_KEYS: [&str; 11] = [
    "hits",
    "misses",
    "entries",
    "evictions",
    "swaps",
    "window_hits",
    "window_misses",
    "segments",
    "delta_upserts",
    "delta_tombstones",
    "compactions",
];

/// Answers `/stats` with the sum of every live worker's statistics,
/// the live-worker count, the fleet's maximum uptime, and a
/// `per_worker` breakdown. The summed totals come first so clients
/// parsing by first occurrence (including [`stats_field`] itself) keep
/// reading fleet-wide numbers.
fn aggregate_stats(ring: &Ring, config: RouterConfig) -> String {
    use std::fmt::Write;
    let bodies = fetch_from_workers(ring, config, "/stats");
    let mut totals = [0u64; STATS_KEYS.len()];
    let mut uptime = 0u64;
    for (_, body) in &bodies {
        for (total, key) in totals.iter_mut().zip(STATS_KEYS) {
            *total += stats_field(body, key);
        }
        uptime = uptime.max(stats_field(body, "uptime_seconds"));
    }
    let [hits, misses, entries, evictions, swaps, window_hits, window_misses, segments, delta_upserts, delta_tombstones, compactions] =
        totals;
    let lookups = hits + misses;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    };
    let mut body = format!(
        "{{\"hits\":{hits},\"misses\":{misses},\"hit_rate\":{hit_rate:.4},\"entries\":{entries},\"evictions\":{evictions},\"swaps\":{swaps},\"window_hits\":{window_hits},\"window_misses\":{window_misses},\"segments\":{segments},\"delta_upserts\":{delta_upserts},\"delta_tombstones\":{delta_tombstones},\"compactions\":{compactions},\"workers\":{},\"uptime_seconds\":{uptime},\"per_worker\":[",
        bodies.len(),
    );
    for (i, (slot, worker_body)) in bodies.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(body, "{{\"worker\":{slot}");
        for key in STATS_KEYS {
            let _ = write!(body, ",\"{key}\":{}", stats_field(worker_body, key));
        }
        let _ = write!(
            body,
            ",\"uptime_seconds\":{}}}",
            stats_field(worker_body, "uptime_seconds")
        );
    }
    body.push_str("]}");
    http::response(200, "OK", &body)
}

/// Injects `label` as the *first* label of a Prometheus series line:
/// `name{a="b"} v` → `name{worker="3",a="b"} v`, `name v` →
/// `name{worker="3"} v`.
fn label_series(line: &str, label: &str) -> String {
    match (line.find('{'), line.find(' ')) {
        (Some(brace), Some(space)) if brace < space => {
            format!("{}{{{label},{}", &line[..brace], &line[brace + 1..])
        }
        (_, Some(space)) => format!("{}{{{label}}}{}", &line[..space], &line[space..]),
        _ => line.to_string(),
    }
}

/// Answers `/metrics` with the exact merge of every live worker's
/// exposition: each worker's series reappear under a `worker="N"`
/// label (all values are integers, so nothing is averaged away), with
/// `# TYPE` headers emitted once per metric and all of a metric's
/// series kept in one group as the text format requires. The router
/// appends its own per-class reject counters under `worker="router"`
/// and a `websyn_cluster_workers_up` gauge.
fn aggregate_metrics(ring: &Ring, config: RouterConfig) -> String {
    use std::collections::HashMap;
    let bodies = fetch_from_workers(ring, config, "/metrics");
    let workers_up = bodies.len();
    // Metric groups in first-seen order. Series are grouped under the
    // *preceding* TYPE header's name, which also keeps histogram
    // `_bucket`/`_sum`/`_count` series with their parent metric.
    let mut order: Vec<String> = Vec::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut series: HashMap<String, Vec<String>> = HashMap::new();
    for (slot, body) in &bodies {
        let label = format!("worker=\"{slot}\"");
        let mut current = String::new();
        for line in body.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split(' ').next().unwrap_or(rest);
                current = name.to_string();
                if !types.contains_key(&current) {
                    order.push(current.clone());
                    types.insert(current.clone(), line.to_string());
                }
            } else if !line.is_empty() && !line.starts_with('#') {
                series
                    .entry(current.clone())
                    .or_default()
                    .push(label_series(line, &label));
            }
        }
    }
    // The router's own rejects join the (possibly already typed)
    // rejects group rather than forming a duplicate one.
    let rejects = "websyn_rejects_total".to_string();
    if !types.contains_key(&rejects) {
        order.push(rejects.clone());
        types.insert(rejects.clone(), format!("# TYPE {rejects} counter"));
    }
    for (class, count) in crate::metrics::reject_counts() {
        series.entry(rejects.clone()).or_default().push(format!(
            "{rejects}{{worker=\"router\",class=\"{class}\"}} {count}"
        ));
    }
    let mut out = String::with_capacity(4096);
    out.push_str("# TYPE websyn_cluster_workers_up gauge\n");
    out.push_str(&format!("websyn_cluster_workers_up {workers_up}\n"));
    // The router's own proxy-latency histogram — a metric no worker
    // emits, so it forms its own group without merge bookkeeping.
    websyn_obs::prometheus::write_type(&mut out, "websyn_router_proxy_duration_us", "histogram");
    websyn_obs::prometheus::write_histogram(
        &mut out,
        "websyn_router_proxy_duration_us",
        "worker=\"router\"",
        &PROXY_LATENCY_US.snapshot(),
    );
    for name in &order {
        out.push_str(&types[name]);
        out.push('\n');
        for line in series.get(name).into_iter().flatten() {
            out.push_str(line);
            out.push('\n');
        }
    }
    http::response_with_type(200, "OK", "text/plain; version=0.0.4", &out)
}

/// Answers `/debug/slow` with every live worker's slow-query trace,
/// nested per worker (the worker bodies are JSON objects and embed
/// verbatim).
fn aggregate_slow(ring: &Ring, config: RouterConfig) -> String {
    use std::fmt::Write;
    let mut body = String::from("{\"workers\":[");
    for (i, (slot, worker_body)) in fetch_from_workers(ring, config, "/debug/slow")
        .iter()
        .enumerate()
    {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(body, "{{\"worker\":{slot},\"slow\":{worker_body}}}");
    }
    body.push_str("]}");
    http::response(200, "OK", &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn ring_routes_to_the_home_slot_and_its_replicas() {
        let ring = Ring::new(4, 2);
        for slot in 0..4 {
            ring.publish(slot, addr(9000 + slot as u16));
        }
        // hash 5 → home slot 1, replicas {1, 2}. With equal load the
        // minimum is the first candidate: slot 1.
        assert_eq!(ring.pick(5, &[]), Some((1, addr(9001))));
        // Load on the home slot shifts the pick to the lighter replica.
        let _busy = InFlight::enter(&ring, 1);
        assert_eq!(ring.pick(5, &[]), Some((2, addr(9002))));
    }

    #[test]
    fn ring_falls_back_beyond_the_replica_set() {
        let ring = Ring::new(4, 2);
        ring.publish(0, addr(9000));
        // hash 1 → home 1, replicas {1, 2} — both down; only slot 0 is
        // live, reachable by the fallback scan.
        assert_eq!(ring.pick(1, &[]), Some((0, addr(9000))));
        // With slot 0 excluded (it already failed), nothing is left.
        assert_eq!(ring.pick(1, &[0]), None);
    }

    #[test]
    fn take_down_drains_and_publish_restores() {
        let ring = Ring::new(2, 1);
        ring.publish(0, addr(9000));
        ring.publish(1, addr(9001));
        assert_eq!(ring.up_count(), 2);
        assert_eq!(ring.take_down(0), Some(addr(9000)));
        assert_eq!(ring.up_count(), 1);
        // hash 0 → home 0, drained → failover to slot 1.
        assert_eq!(ring.pick(0, &[]), Some((1, addr(9001))));
        ring.publish(0, addr(9002));
        assert_eq!(ring.pick(0, &[]), Some((0, addr(9002))));
    }

    #[test]
    fn in_flight_guard_balances_on_drop() {
        let ring = Ring::new(1, 1);
        {
            let _a = InFlight::enter(&ring, 0);
            let _b = InFlight::enter(&ring, 0);
            assert_eq!(ring.in_flight(0), 2);
        }
        assert_eq!(ring.in_flight(0), 0);
    }

    #[test]
    fn query_hash_ignores_surface_encoding() {
        assert_eq!(query_hash("Indy 4"), query_hash("indy  4"));
        assert_ne!(query_hash("indy 4"), query_hash("indy 5"));
    }

    #[test]
    fn stats_field_reads_the_fixed_grammar() {
        let body = "{\"hits\":12,\"misses\":3,\"hit_rate\":0.8000,\"entries\":7,\"evictions\":0,\"swaps\":1,\"window_hits\":9,\"window_misses\":4}";
        assert_eq!(stats_field(body, "hits"), 12);
        assert_eq!(stats_field(body, "misses"), 3);
        assert_eq!(stats_field(body, "swaps"), 1);
        // The window-cache fields must not collide with the plain
        // hit/miss patterns (and vice versa).
        assert_eq!(stats_field(body, "window_hits"), 9);
        assert_eq!(stats_field(body, "window_misses"), 4);
        assert_eq!(stats_field(body, "absent"), 0);
    }

    #[test]
    fn label_series_injects_the_worker_label_first() {
        let label = "worker=\"2\"";
        assert_eq!(label_series("m 5", label), "m{worker=\"2\"} 5");
        assert_eq!(
            label_series("m{a=\"b\"} 5", label),
            "m{worker=\"2\",a=\"b\"} 5"
        );
        // Histogram bucket series keep their `le` label intact.
        assert_eq!(
            label_series("h_bucket{le=\"+Inf\"} 9", label),
            "h_bucket{worker=\"2\",le=\"+Inf\"} 9"
        );
    }

    #[test]
    fn aggregate_metrics_with_no_workers_still_reports_the_router() {
        // An all-down ring: the exposition degrades to the router's own
        // series instead of an empty (or malformed) body.
        let ring = Ring::new(2, 1);
        let response = aggregate_metrics(&ring, RouterConfig::default());
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(response.contains("text/plain; version=0.0.4"));
        assert!(response.contains("websyn_cluster_workers_up 0\n"));
        assert!(response.contains("# TYPE websyn_rejects_total counter\n"));
        assert!(response.contains("websyn_rejects_total{worker=\"router\",class=\"busy\"}"));
        // The proxy-latency histogram is always present, labeled as the
        // router's own series.
        assert!(response.contains("# TYPE websyn_router_proxy_duration_us histogram\n"));
        assert!(response.contains("websyn_router_proxy_duration_us_count{worker=\"router\"}"));
    }

    #[test]
    fn fan_out_delta_with_no_workers_is_an_explicit_failure() {
        // An all-down fleet cannot apply anything: the answer must not
        // read as success.
        let ring = Ring::new(2, 1);
        let response = fan_out_delta(&ring, "indy five\t7\n", RouterConfig::default());
        assert!(response.starts_with("HTTP/1.1 503 "), "{response}");
        assert!(response.contains("\"ok\":false"));
        assert!(response.contains("\"applied_workers\":0"));
        assert!(response.contains("\"targeted_workers\":0"));
        assert!(response.ends_with("\"per_worker\":[]}"));
    }

    #[test]
    fn aggregate_slow_and_stats_with_no_workers_are_well_formed() {
        let ring = Ring::new(1, 1);
        let slow = aggregate_slow(&ring, RouterConfig::default());
        assert!(slow.ends_with("{\"workers\":[]}"));
        let stats = aggregate_stats(&ring, RouterConfig::default());
        assert!(stats.contains("\"workers\":0"));
        assert!(stats.contains("\"uptime_seconds\":0"));
        assert!(stats.ends_with("\"per_worker\":[]}"));
    }
}
