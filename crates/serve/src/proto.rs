//! The wire protocol: line-delimited UTF-8 over TCP.
//!
//! One request per line, one response line per request, in request
//! order (responses to pipelined requests are re-sequenced by the
//! connection's writer). Normalized surfaces contain only word
//! characters and single spaces, so the response grammar needs no
//! escaping:
//!
//! ```text
//! request   = query-line | control-line
//! query-line   = any text not starting with '#'
//! control-line = "#stats" | "#metrics" | "#slow" | dict-line
//! dict-line = "#dict" *( TAB surface TAB binding )
//!                                  ; one delta op per (surface, binding)
//!                                  ; pair: binding is an entity id for
//!                                  ; an upsert, "-" for a tombstone —
//!                                  ; the delta TSV of
//!                                  ; POST /admin/dict/delta with its
//!                                  ; newlines folded onto tabs (row
//!                                  ; fields and rows alternate; raw
//!                                  ; surfaces never contain tabs)
//!
//! response  = ok-line | stats-line | metrics-line | slow-line
//!           | dict-ok-line | err-line
//! ok-line   = "OK" *( TAB span )
//! span      = start "," end "," entity "," distance "," surface
//! stats-line = "STATS" TAB "hits=" n TAB "misses=" n TAB "hit_rate=" x
//!              TAB "entries=" n TAB "evictions=" n TAB "swaps=" n
//!              TAB "window_hits=" n TAB "window_misses=" n
//!              TAB "segments=" n TAB "delta_upserts=" n
//!              TAB "delta_tombstones=" n TAB "epoch=" n
//!              TAB "compactions=" n TAB "uptime_seconds=" n
//! dict-ok-line = "DICT" TAB "applied=" n TAB "segments=" n
//!                TAB "epoch=" n TAB "revision=" n
//!                                  ; the delta is live before this
//!                                  ; line is written
//! metrics-line = "METRICS" *( TAB exposition-line )
//!                                  ; the Prometheus text exposition of
//!                                  ; GET /metrics, one response line:
//!                                  ; exposition lines carry no tabs, so
//!                                  ; splitting on TAB recovers the body
//! slow-line = "SLOW" TAB json      ; the GET /debug/slow JSON document
//!                                  ; (single-line: control characters
//!                                  ; in queries are \u-escaped)
//! err-line  = "ERR" SP reason      ; e.g. "ERR busy" under backpressure,
//!                                  ; "ERR line-too-long" before dropping
//!                                  ; a connection whose request line
//!                                  ; exceeds the configured cap
//! ```
//!
//! `start`/`end` are token indices into the *normalized* query,
//! `entity` is the raw entity id, `distance` the verified edit distance
//! (0 = exact), `surface` the dictionary surface the mention resolved
//! to. An `OK` line with no spans means the query matched nothing.
//!
//! Control lines are answered at *receipt* time (their response line
//! still lands in request order): a `#stats` pipelined behind query
//! lines reports counters as of when it was read, which may not yet
//! include those in-flight queries.

use crate::cache::CacheStats;
use crate::protocol::{Protocol, Reject, Request, RequestParser, Wire};
use std::sync::Arc;
use websyn_core::{DictStats, MatchSpan, WindowCacheStats};

/// The backpressure reject sent when the request queue is full.
pub const ERR_BUSY: &str = "ERR busy";

/// The reject sent for requests that race server shutdown.
pub const ERR_SHUTDOWN: &str = "ERR shutting-down";

/// The reject sent for an unknown `#`-control line.
pub const ERR_UNKNOWN_CONTROL: &str = "ERR unknown-control";

/// The reject sent — once, before the connection is dropped — for a
/// request line exceeding the server's `max_line_bytes` cap.
pub const ERR_LINE_TOO_LONG: &str = "ERR line-too-long";

/// The `#stats` control request.
pub const CONTROL_STATS: &str = "#stats";

/// The `#metrics` control request — the line-protocol spelling of
/// `GET /metrics`.
pub const CONTROL_METRICS: &str = "#metrics";

/// The `#slow` control request — the line-protocol spelling of
/// `GET /debug/slow`.
pub const CONTROL_SLOW: &str = "#slow";

/// The `#dict` control verb — the line-protocol spelling of
/// `POST /admin/dict/delta`. Delta ops follow on the same line,
/// tab-separated (see the module grammar).
pub const CONTROL_DICT: &str = "#dict";

/// Serializes a segmentation result as one `OK` response line (without
/// the trailing newline). This is the *only* span serializer in the
/// serving stack — cached and uncached results pass through the same
/// function, so responses are byte-identical by construction.
pub fn format_spans(spans: &[MatchSpan]) -> String {
    use std::fmt::Write;
    let mut out = String::from("OK");
    for s in spans {
        // Appending into the response String cannot fail.
        let _ = write!(
            out,
            "\t{},{},{},{},{}",
            s.start,
            s.end,
            s.entity.raw(),
            s.distance,
            s.surface()
        );
    }
    out
}

/// Serializes cache statistics as one `STATS` response line. `window`
/// carries the matcher's cross-batch window-cache counters, zero when
/// no cache is attached (the fields are always present); `dict` the
/// dictionary lifecycle counters; `uptime_seconds` is the serving
/// engine's age.
pub fn format_stats(
    stats: &CacheStats,
    swaps: u64,
    window: Option<WindowCacheStats>,
    dict: DictStats,
    uptime_seconds: u64,
) -> String {
    let window = window.unwrap_or_default();
    format!(
        "STATS\thits={}\tmisses={}\thit_rate={:.4}\tentries={}\tevictions={}\tswaps={}\twindow_hits={}\twindow_misses={}\tsegments={}\tdelta_upserts={}\tdelta_tombstones={}\tepoch={}\tcompactions={}\tuptime_seconds={}",
        stats.hits,
        stats.misses,
        stats.hit_rate(),
        stats.entries,
        stats.evictions,
        swaps,
        window.hits,
        window.misses,
        dict.segments,
        dict.delta_upserts,
        dict.delta_tombstones,
        dict.epoch,
        dict.compactions,
        uptime_seconds,
    )
}

/// Serializes the acknowledgement of an applied dictionary delta as
/// one `DICT` response line: the op count of the delta and where the
/// dictionary lifecycle now stands.
pub fn format_dict_delta(applied: usize, dict: &DictStats) -> String {
    format!(
        "DICT\tapplied={}\tsegments={}\tepoch={}\trevision={}",
        applied, dict.segments, dict.epoch, dict.revision,
    )
}

/// The line-delimited TCP protocol, as a [`Protocol`] implementation.
///
/// This is the original websyn-serve wire format: one request per
/// line, one response line per request, in request order. See the
/// module docs for the exact grammar.
#[derive(Debug, Clone, Copy, Default)]
pub struct LineProtocol;

impl Protocol for LineProtocol {
    fn name(&self) -> &'static str {
        "line"
    }

    fn wire(&self) -> Wire {
        Wire::Line
    }

    fn terminator(&self) -> &'static [u8] {
        b"\n"
    }

    fn parser(&self) -> Box<dyn RequestParser> {
        Box::new(LineParser)
    }

    fn render_reject(&self, reject: Reject) -> Arc<str> {
        Arc::from(match reject {
            Reject::Busy => ERR_BUSY,
            Reject::Shutdown => ERR_SHUTDOWN,
            Reject::TooLarge => ERR_LINE_TOO_LONG,
            // The line parser never produces these two, but the
            // connection layer may ask any protocol to render any
            // reject, so the grammar's generic reject covers them.
            Reject::Malformed | Reject::Method => "ERR malformed",
            Reject::NotFound => ERR_UNKNOWN_CONTROL,
        })
    }

    fn render_stats(
        &self,
        stats: &CacheStats,
        swaps: u64,
        window: Option<WindowCacheStats>,
        dict: DictStats,
        uptime_seconds: u64,
    ) -> Arc<str> {
        Arc::from(format_stats(stats, swaps, window, dict, uptime_seconds).as_str())
    }

    fn render_dict_delta(&self, applied: usize, dict: &DictStats) -> Arc<str> {
        Arc::from(format_dict_delta(applied, dict).as_str())
    }

    fn render_metrics(&self, body: &str) -> Arc<str> {
        // The exposition is inherently multi-line; folding its lines
        // onto tabs keeps the one-response-line-per-request framing
        // intact. Exposition lines never contain tabs, so splitting the
        // payload on TAB recovers the body exactly.
        let mut out = String::with_capacity(body.len() + 8);
        out.push_str("METRICS");
        for line in body.lines() {
            out.push('\t');
            out.push_str(line);
        }
        Arc::from(out.as_str())
    }

    fn render_slow(&self, body: &str) -> Arc<str> {
        // The trace JSON is single-line by construction (control
        // characters inside recorded queries are \u-escaped), so it
        // rides one response line unmodified.
        Arc::from(format!("SLOW\t{body}").as_str())
    }
}

/// Line framing is trivial: every line is one complete request.
struct LineParser;

impl RequestParser for LineParser {
    fn on_line(&mut self, raw: &[u8]) -> Option<Request> {
        // Invalid UTF-8 is decoded lossily — the replacement
        // characters simply fail to match anything downstream.
        let decoded = String::from_utf8_lossy(raw);
        let request = decoded.trim_end_matches('\r');
        Some(if let Some(control) = request.strip_prefix('#') {
            match control {
                "stats" => Request::Stats { close: false },
                "metrics" => Request::Metrics { close: false },
                "slow" => Request::DebugSlow { close: false },
                _ if control == "dict" || control.starts_with("dict\t") => {
                    parse_dict_line(control.strip_prefix("dict").expect("checked prefix"))
                }
                _ => Request::Reject {
                    reject: Reject::NotFound,
                    close: false,
                },
            }
        } else {
            Request::Query {
                query: request.to_string(),
                close: false,
            }
        })
    }
}

/// Decodes the payload of a `#dict` line — `*( TAB surface TAB
/// binding )` — back into the delta TSV (one `surface TAB binding`
/// row per pair). A bare `#dict` is an empty delta; an odd number of
/// fields cannot be paired up and is malformed.
fn parse_dict_line(payload: &str) -> Request {
    let payload = payload.strip_prefix('\t').unwrap_or(payload);
    if payload.is_empty() {
        return Request::DictDelta {
            body: String::new(),
            close: false,
        };
    }
    let fields: Vec<&str> = payload.split('\t').collect();
    if !fields.len().is_multiple_of(2) {
        return Request::Reject {
            reject: Reject::Malformed,
            close: false,
        };
    }
    let mut body = String::with_capacity(payload.len() + fields.len() / 2);
    for pair in fields.chunks(2) {
        body.push_str(pair[0]);
        body.push('\t');
        body.push_str(pair[1]);
        body.push('\n');
    }
    Request::DictDelta { body, close: false }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_common::EntityId;
    use websyn_core::{EntityMatcher, FuzzyConfig};

    #[test]
    fn formats_empty_and_multi_span_lines() {
        assert_eq!(format_spans(&[]), "OK");
        let m = EntityMatcher::from_pairs(vec![
            ("indy 4", EntityId::new(7)),
            ("madagascar 2", EntityId::new(1)),
        ])
        .with_fuzzy(FuzzyConfig::default());
        let spans = m.segment("indy 4 and madagascar 2");
        let line = format_spans(&spans);
        assert_eq!(line, "OK\t0,2,7,0,indy 4\t3,5,1,0,madagascar 2");
        // Fuzzy distance shows up in the distance field.
        let fuzzy = m.segment("madagasacr 2");
        assert_eq!(format_spans(&fuzzy), "OK\t0,2,1,1,madagascar 2");
    }

    #[test]
    fn line_parser_classifies_queries_controls_and_unknowns() {
        let mut p = LineProtocol.parser();
        assert_eq!(
            p.on_line(b"Indy 4 near San Fran"),
            Some(Request::Query {
                query: "Indy 4 near San Fran".to_string(),
                close: false,
            })
        );
        // Carriage returns are framing residue, not query text.
        assert_eq!(
            p.on_line(b"indy 4\r"),
            Some(Request::Query {
                query: "indy 4".to_string(),
                close: false,
            })
        );
        assert_eq!(p.on_line(b"#stats"), Some(Request::Stats { close: false }));
        assert_eq!(
            p.on_line(b"#metrics"),
            Some(Request::Metrics { close: false })
        );
        assert_eq!(
            p.on_line(b"#slow"),
            Some(Request::DebugSlow { close: false })
        );
        assert_eq!(
            p.on_line(b"#frobnicate"),
            Some(Request::Reject {
                reject: Reject::NotFound,
                close: false,
            })
        );
    }

    #[test]
    fn line_renders_cover_every_reject() {
        let proto = LineProtocol;
        assert_eq!(&*proto.render_reject(Reject::Busy), ERR_BUSY);
        assert_eq!(&*proto.render_reject(Reject::Shutdown), ERR_SHUTDOWN);
        assert_eq!(&*proto.render_reject(Reject::TooLarge), ERR_LINE_TOO_LONG);
        assert_eq!(&*proto.render_reject(Reject::NotFound), ERR_UNKNOWN_CONTROL);
        for reject in [Reject::Malformed, Reject::Method] {
            assert!(proto.render_reject(reject).starts_with("ERR "));
        }
        assert!(proto
            .render_stats(&CacheStats::default(), 0, None, DictStats::default(), 0)
            .starts_with("STATS\t"));
    }

    #[test]
    fn metrics_and_slow_render_as_single_lines() {
        let proto = LineProtocol;
        // The multi-line exposition folds onto tabs — one response
        // line, recoverable by splitting on TAB.
        let metrics = proto.render_metrics("# TYPE x counter\nx 1\nx{l=\"a\"} 2\n");
        assert_eq!(&*metrics, "METRICS\t# TYPE x counter\tx 1\tx{l=\"a\"} 2");
        assert!(!metrics.contains('\n'));
        // An empty exposition still answers with the verb alone.
        assert_eq!(&*proto.render_metrics(""), "METRICS");
        // The trace JSON is single-line already and passes through.
        let slow = proto.render_slow("{\"entries\":[]}");
        assert_eq!(&*slow, "SLOW\t{\"entries\":[]}");
        assert!(!slow.contains('\n'));
    }

    #[test]
    fn stats_line_is_single_line_tab_separated() {
        let dict = DictStats {
            segments: 2,
            delta_upserts: 5,
            delta_tombstones: 1,
            epoch: 2,
            compactions: 4,
            ..DictStats::default()
        };
        let line = format_stats(&CacheStats::default(), 3, None, dict, 17);
        assert!(line.starts_with("STATS\thits=0\t"));
        assert!(line.ends_with(
            "swaps=3\twindow_hits=0\twindow_misses=0\tsegments=2\tdelta_upserts=5\
             \tdelta_tombstones=1\tepoch=2\tcompactions=4\tuptime_seconds=17"
        ));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn dict_line_decodes_pairs_back_into_delta_tsv() {
        let mut p = LineProtocol.parser();
        // One upsert, one tombstone, folded onto tabs.
        assert_eq!(
            p.on_line(b"#dict\tstarwars kid\t9\tindy 4\t-"),
            Some(Request::DictDelta {
                body: "starwars kid\t9\nindy 4\t-\n".to_string(),
                close: false,
            })
        );
        // A bare verb is an empty delta (a no-op commit).
        assert_eq!(
            p.on_line(b"#dict"),
            Some(Request::DictDelta {
                body: String::new(),
                close: false,
            })
        );
        // An odd field count cannot pair up: malformed, not a guess.
        assert_eq!(
            p.on_line(b"#dict\tstarwars kid"),
            Some(Request::Reject {
                reject: Reject::Malformed,
                close: false,
            })
        );
        // "#dictionary" is not the dict verb.
        assert_eq!(
            p.on_line(b"#dictionary"),
            Some(Request::Reject {
                reject: Reject::NotFound,
                close: false,
            })
        );
    }

    #[test]
    fn dict_ack_line_reports_lifecycle_position() {
        let dict = DictStats {
            segments: 3,
            epoch: 3,
            revision: 7,
            ..DictStats::default()
        };
        assert_eq!(
            format_dict_delta(2, &dict),
            "DICT\tapplied=2\tsegments=3\tepoch=3\trevision=7"
        );
    }
}
