//! Std-only HTTP/1.1 front end: the wire format and its [`Protocol`]
//! implementation.
//!
//! The HTTP transport serves the same engine, queue, worker pool and
//! cache as the line protocol, but speaks a format every standard
//! load-testing and routing tool understands (`curl`, `oha`, `wrk`,
//! reverse proxies):
//!
//! ```text
//! GET /match?q=<percent-encoded query>   → 200, JSON span response
//! GET /stats                             → 200, JSON cache statistics
//! GET /metrics                           → 200, Prometheus text exposition
//! GET /debug/slow                        → 200, JSON slow-query trace
//! POST /admin/dict/delta                 → 200, JSON delta acknowledgement
//! ```
//!
//! `POST /admin/dict/delta` is the live-update control plane: the
//! request body is a `Content-Length`-framed dictionary delta TSV
//! ([`websyn_core::DictDelta::parse_tsv`] — `surface TAB entity`
//! upserts, `surface TAB -` tombstones, newline-separated), applied to
//! the serving dictionary *before* the 200 is written — no restart, no
//! base recompile. Bodies should be newline-terminated; a final
//! unterminated row is accepted only when `Content-Length` ends
//! exactly at it. An unparseable delta answers `400` and applies
//! nothing.
//!
//! The 200 response body for `/match` is
//!
//! ```json
//! {"spans":[{"start":0,"end":2,"entity":7,"distance":0,"surface":"indy 4"}]}
//! ```
//!
//! with `start`/`end` token indices into the *normalized* query,
//! `entity` the raw entity id, `distance` the verified edit distance
//! (0 = exact) and `surface` the dictionary surface the mention
//! resolved to — field for field the line protocol's span tuple, and
//! covered by the same byte-identical-response machinery: the JSON
//! body is rendered once, on the cache miss that filled the entry
//! ([`crate::Rendered`]).
//!
//! Error mapping (see [`Reject`]):
//!
//! | condition | line protocol | HTTP |
//! |---|---|---|
//! | queue full (backpressure) | `ERR busy` | `503` |
//! | shutting down | `ERR shutting-down` | `503` |
//! | request line over the cap | `ERR line-too-long` | `431` |
//! | unparseable request | — | `400` |
//! | unknown endpoint | `ERR unknown-control` | `404` |
//! | unsupported method | — | `405` |
//!
//! Supported: persistent connections (HTTP/1.1 keep-alive is the
//! default; `Connection: close` and HTTP/1.0 close after the
//! response), pipelined GETs (responses are re-sequenced into request
//! order by the shared connection writer), percent-decoding (`%xx` and
//! `+` for space) of the `q` parameter — which may sit at any position
//! in the `&`-separated query string (`/match?verbose=1&q=a`); a
//! duplicated `q` is ambiguous and answered `400`, as is any broken
//! percent escape. Deliberately out of scope:
//! request bodies anywhere but `POST /admin/dict/delta` (a GET with
//! `Content-Length`/`Transfer-Encoding` is answered `400` and the
//! connection dropped, since the body would desynchronize request
//! framing), chunked encoding, TLS, and multiplexed HTTP/2 — the
//! serving stack stays std-only.
//!
//! Responses do not emit a `Connection` header: for HTTP/1.1 the
//! absence means keep-alive, and a close-marked exchange is terminated
//! by actually closing the socket after the response is flushed —
//! `Content-Length` keeps the body unambiguous either way.

use crate::cache::CacheStats;
use crate::protocol::{Protocol, Reject, Request, RequestParser, Wire};
use std::io::{self, BufRead};
use std::sync::Arc;
use websyn_core::{DictStats, MatchSpan, WindowCacheStats};

/// Renders a complete HTTP/1.1 response: status line, headers, body.
/// Every websyn response is `Content-Length`-framed JSON — except the
/// Prometheus `/metrics` exposition, which goes through
/// [`response_with_type`] to carry `text/plain`.
pub fn response(status: u16, reason: &str, body: &str) -> String {
    response_with_type(status, reason, "application/json", body)
}

/// [`response`] with an explicit `Content-Type` — the general
/// constructor behind every response the protocol writes.
pub fn response_with_type(status: u16, reason: &str, content_type: &str, body: &str) -> String {
    format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
}

/// Escapes `s` into `out` as JSON string contents (without the
/// surrounding quotes). Dictionary surfaces are normalized (lowercase
/// word characters and single spaces) so the escapes never fire for
/// them, but the renderer stays correct for any input.
pub(crate) fn json_escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Serializes a segmentation result as the `/match` JSON body. This is
/// the HTTP counterpart of [`crate::proto::format_spans`] — the only
/// JSON span serializer in the stack, so cached and uncached HTTP
/// responses are byte-identical by construction.
pub fn spans_json(spans: &[MatchSpan]) -> String {
    use std::fmt::Write;
    let mut out = String::from("{\"spans\":[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"start\":{},\"end\":{},\"entity\":{},\"distance\":{},\"surface\":\"",
            s.start,
            s.end,
            s.entity.raw(),
            s.distance
        );
        json_escape_into(&mut out, s.surface());
        out.push_str("\"}");
    }
    out.push_str("]}");
    out
}

/// Serializes cache statistics as the `/stats` JSON body — the HTTP
/// counterpart of [`crate::proto::format_stats`]. `window` carries the
/// matcher's cross-batch window-cache counters
/// ([`websyn_core::EntityMatcher::with_window_cache`]); the fields are
/// always present (zero when no cache is attached) so the router's
/// fixed-grammar aggregation never special-cases their absence.
pub fn stats_json(
    stats: &CacheStats,
    swaps: u64,
    window: Option<WindowCacheStats>,
    dict: DictStats,
    uptime_seconds: u64,
) -> String {
    let window = window.unwrap_or_default();
    format!(
        "{{\"hits\":{},\"misses\":{},\"hit_rate\":{:.4},\"entries\":{},\"evictions\":{},\"swaps\":{},\"window_hits\":{},\"window_misses\":{},\"segments\":{},\"delta_upserts\":{},\"delta_tombstones\":{},\"epoch\":{},\"compactions\":{},\"uptime_seconds\":{}}}",
        stats.hits,
        stats.misses,
        stats.hit_rate(),
        stats.entries,
        stats.evictions,
        swaps,
        window.hits,
        window.misses,
        dict.segments,
        dict.delta_upserts,
        dict.delta_tombstones,
        dict.epoch,
        dict.compactions,
        uptime_seconds,
    )
}

/// Serializes a dictionary-delta acknowledgement as the
/// `POST /admin/dict/delta` 200 body — the HTTP counterpart of
/// [`crate::proto::format_dict_delta`]: how many ops the delta
/// carried, plus where the applied delta left the dictionary
/// lifecycle.
pub fn dict_delta_json(applied: usize, dict: &DictStats) -> String {
    format!(
        "{{\"applied\":{},\"segments\":{},\"delta_upserts\":{},\"delta_tombstones\":{},\"epoch\":{},\"revision\":{},\"compactions\":{}}}",
        applied,
        dict.segments,
        dict.delta_upserts,
        dict.delta_tombstones,
        dict.epoch,
        dict.revision,
        dict.compactions,
    )
}

/// Percent-decodes a query-string component: `+` is space, `%xx` is a
/// byte, anything else passes through. Returns `None` on any broken
/// escape — a truncated escape at the end of the string (`a%2`), a
/// lone trailing `%`, or non-hex escape digits (`%zz`) — and the
/// caller maps `None` to a `400`: a broken escape never panics and
/// never passes through as literal text. Decoded bytes are interpreted
/// as UTF-8, lossily — exactly like the line protocol's treatment of
/// raw bytes.
pub fn percent_decode(s: &str) -> Option<String> {
    let raw = s.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(raw.len());
    let mut i = 0;
    while i < raw.len() {
        match raw[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                let hex = raw.get(i + 1..i + 3)?;
                let hi = (hex[0] as char).to_digit(16)?;
                let lo = (hex[1] as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    Some(String::from_utf8_lossy(&out).into_owned())
}

/// Percent-encodes a string for use as a query-string value: unreserved
/// characters (RFC 3986) pass through, space becomes `+`, everything
/// else becomes `%XX`. The client-side inverse of [`percent_decode`] —
/// used by the smoke test, the conformance tests and the load
/// generator to put arbitrary queries on a request line.
pub fn percent_encode(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for &b in s.as_bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'.' | b'_' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            _ => {
                use std::fmt::Write;
                let _ = write!(out, "%{b:02X}");
            }
        }
    }
    out
}

/// Reads one `Content-Length`-framed HTTP response off `reader` and
/// returns `(status, body)` — a minimal std-only client, enough to
/// drive this crate's own server and the cluster router's upstream
/// side (every websyn response is `Content-Length`-framed). Accepts
/// both `HTTP/1.1` and `HTTP/1.0` status lines — an upstream honoring
/// a 1.0 request downgrades its response version, and rejecting it
/// would make the proxy path version-fragile. Fails on any other
/// version, a malformed status line, a missing/broken
/// `Content-Length`, or a short read.
pub fn read_response<R: BufRead>(reader: &mut R) -> io::Result<(u16, String)> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.is_empty() {
        return Err(io::ErrorKind::UnexpectedEof.into());
    }
    let status: u16 = line
        .strip_prefix("HTTP/1.1 ")
        .or_else(|| line.strip_prefix("HTTP/1.0 "))
        .and_then(|rest| rest.split(' ').next())
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut content_length: Option<usize> = None;
    loop {
        line.clear();
        reader.read_line(&mut line)?;
        let header = line.trim_end_matches(['\r', '\n']);
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(value.trim().parse().map_err(|_| bad("bad length"))?);
            }
        }
    }
    let length = content_length.ok_or_else(|| bad("missing content-length"))?;
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body)?;
    String::from_utf8(body)
        .map(|body| (status, body))
        .map_err(|_| bad("non-utf8 body"))
}

/// Upper bound on header lines per request head — far above anything a
/// real client sends, low enough that a drip-feed of headers cannot
/// hold a request open forever.
const MAX_HEADER_LINES: usize = 100;

/// Upper bound on a `POST /admin/dict/delta` body. Deltas are
/// incremental by design — a payload near this size should be a new
/// base artifact rolled via the cluster instead; beyond it the request
/// is answered `431` and the connection dropped (the body is unread).
const MAX_DELTA_BODY_BYTES: usize = 4 << 20;

/// The one endpoint that accepts a request body.
const DELTA_PATH: &str = "/admin/dict/delta";

/// The HTTP/1.1 transport, as a [`Protocol`] implementation. See the
/// module docs for the endpoint map and error mapping.
#[derive(Debug, Clone, Copy, Default)]
pub struct HttpProtocol;

impl Protocol for HttpProtocol {
    fn name(&self) -> &'static str {
        "http"
    }

    fn wire(&self) -> Wire {
        Wire::Http
    }

    fn terminator(&self) -> &'static [u8] {
        // Responses are self-framed by Content-Length.
        b""
    }

    fn parser(&self) -> Box<dyn RequestParser> {
        Box::new(HttpParser::default())
    }

    fn render_reject(&self, reject: Reject) -> Arc<str> {
        let (status, reason, error) = match reject {
            Reject::Busy => (503, "Service Unavailable", "busy"),
            Reject::Shutdown => (503, "Service Unavailable", "shutting-down"),
            Reject::TooLarge => (431, "Request Header Fields Too Large", "line-too-long"),
            Reject::Malformed => (400, "Bad Request", "malformed"),
            Reject::NotFound => (404, "Not Found", "not-found"),
            Reject::Method => (405, "Method Not Allowed", "method-not-allowed"),
        };
        Arc::from(response(status, reason, &format!("{{\"error\":\"{error}\"}}")).as_str())
    }

    fn render_stats(
        &self,
        stats: &CacheStats,
        swaps: u64,
        window: Option<WindowCacheStats>,
        dict: DictStats,
        uptime_seconds: u64,
    ) -> Arc<str> {
        Arc::from(
            response(
                200,
                "OK",
                &stats_json(stats, swaps, window, dict, uptime_seconds),
            )
            .as_str(),
        )
    }

    fn render_dict_delta(&self, applied: usize, dict: &DictStats) -> Arc<str> {
        Arc::from(response(200, "OK", &dict_delta_json(applied, dict)).as_str())
    }

    fn render_metrics(&self, body: &str) -> Arc<str> {
        // Prometheus text exposition, not JSON.
        Arc::from(response_with_type(200, "OK", "text/plain; version=0.0.4", body).as_str())
    }

    fn render_slow(&self, body: &str) -> Arc<str> {
        Arc::from(response(200, "OK", body).as_str())
    }
}

/// What the parser knows about the request head accumulated so far.
#[derive(Default)]
struct HttpParser {
    /// The parsed request line (`None` until one arrives; leading
    /// blank lines are tolerated per RFC 9112 §2.2).
    target: Option<String>,
    /// Headers seen so far.
    header_lines: usize,
    /// Close after responding (HTTP/1.0 default, or
    /// `Connection: close`).
    close: bool,
    /// A reject decided mid-head (bad method, a body announced);
    /// still answered only once the head ends, so framing holds.
    bad: Option<Reject>,
    /// A reject that also loses framing — answered immediately.
    fatal: bool,
    /// The request is `POST /admin/dict/delta`: the one shape allowed
    /// to announce a body.
    delta_post: bool,
    /// The announced `Content-Length` of a delta post.
    content_length: usize,
    /// Body bytes still owed once the head has ended; `> 0` means the
    /// parser is in body mode and lines are body rows, not headers.
    body_remaining: usize,
    /// Accumulated body rows (newlines restored between them).
    body: String,
}

impl HttpParser {
    fn reset(&mut self) -> Option<Request> {
        let close = self.close;
        let bad = self.bad;
        let target = self.target.take();
        *self = Self::default();
        if let Some(reject) = bad {
            return Some(Request::Reject {
                reject,
                // A body we will not read desynchronizes framing, so
                // `bad` rejects close; pure method/endpoint errors
                // kept framing and honor keep-alive.
                close: close || reject == Reject::Malformed || reject == Reject::TooLarge,
            });
        }
        Some(route(&target?, close))
    }

    fn fatal(&mut self) -> Option<Request> {
        self.fatal = true;
        Some(Request::Reject {
            reject: Reject::Malformed,
            close: true,
        })
    }
}

/// Extracts the raw (still percent-encoded) `q` value from an
/// `&`-separated query string. `q` may sit at any position among other
/// parameters (`verbose=1&q=a&trace=0`); unknown keys are ignored.
/// Returns `None` — a malformed request — when `q` is absent, has no
/// `=` (a bare `q` key carries no value to decode), or appears more
/// than once: with duplicates there is no principled winner, and
/// silently picking one would make `?q=a&q=b` resolve differently from
/// what at least one of the two senders meant, so the policy is an
/// explicit `400`.
fn query_param(query_string: &str) -> Option<&str> {
    let mut q = None;
    for pair in query_string.split('&') {
        if let Some((key, value)) = pair.split_once('=') {
            if key == "q" && q.replace(value).is_some() {
                return None; // duplicate q: ambiguous, reject
            }
        } else if pair == "q" {
            return None; // bare `q` with no `=`: no value to decode
        }
    }
    q
}

/// Maps a request target onto the endpoint table.
fn route(target: &str, close: bool) -> Request {
    let (path, query_string) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    match path {
        "/match" => {
            let q = query_string.and_then(query_param).map(percent_decode);
            match q {
                Some(Some(query)) => Request::Query { query, close },
                // `q` missing/duplicated or with a broken escape: a
                // client error, but framing is intact — keep the
                // connection.
                _ => Request::Reject {
                    reject: Reject::Malformed,
                    close,
                },
            }
        }
        "/stats" => Request::Stats { close },
        "/metrics" => Request::Metrics { close },
        "/debug/slow" => Request::DebugSlow { close },
        // The delta endpoint is POST-only (it mutates the dictionary);
        // a GET that reaches routing used the wrong method.
        DELTA_PATH => Request::Reject {
            reject: Reject::Method,
            close,
        },
        _ => Request::Reject {
            reject: Reject::NotFound,
            close,
        },
    }
}

impl RequestParser for HttpParser {
    fn on_line(&mut self, raw: &[u8]) -> Option<Request> {
        if self.fatal {
            // Framing is gone; the connection is being torn down.
            return None;
        }

        if self.body_remaining > 0 {
            // Body mode: `raw` is a delta row, counted against
            // Content-Length with the newline the connection layer
            // stripped (`+ 1`).
            let consumed = raw.len() + 1;
            if consumed < self.body_remaining {
                self.body.push_str(&String::from_utf8_lossy(raw));
                self.body.push('\n');
                self.body_remaining -= consumed;
                return None;
            }
            // Complete: either the newline lands exactly on the
            // announced length, or the length ends at the row itself —
            // a final unterminated row (e.g. `curl --data` without a
            // trailing newline, or a body flushed at EOF).
            if consumed == self.body_remaining || raw.len() == self.body_remaining {
                self.body.push_str(&String::from_utf8_lossy(raw));
                if consumed == self.body_remaining {
                    self.body.push('\n');
                }
                let body = std::mem::take(&mut self.body);
                let close = self.close;
                *self = Self::default();
                return Some(Request::DictDelta { body, close });
            }
            // The announced length ends mid-row: whatever follows
            // cannot be re-framed as a request line.
            return self.fatal();
        }

        let line = String::from_utf8_lossy(raw);
        let line = line.trim_end_matches('\r');

        if self.target.is_none() && self.bad.is_none() {
            // Awaiting the request line; tolerate leading blank lines.
            if line.is_empty() {
                return None;
            }
            let mut parts = line.split(' ');
            let (method, target, version) = (parts.next(), parts.next(), parts.next());
            let (Some(method), Some(target), Some(version), None) =
                (method, target, version, parts.next())
            else {
                return self.fatal();
            };
            self.close = match version {
                "HTTP/1.1" => false,
                "HTTP/1.0" => true,
                _ => return self.fatal(),
            };
            if !target.starts_with('/') {
                return self.fatal();
            }
            match method {
                "GET" => {}
                // The delta endpoint is the one POST target; its body
                // is Content-Length framed, so framing holds.
                "POST" if target == DELTA_PATH => self.delta_post = true,
                _ => self.bad = Some(Reject::Method),
            }
            self.target = Some(target.to_string());
            return None;
        }

        if line.is_empty() {
            // End of head: the request is complete — except a clean
            // delta post, which still owes its body.
            if self.delta_post && self.bad.is_none() {
                if self.content_length == 0 {
                    let close = self.close;
                    *self = Self::default();
                    return Some(Request::DictDelta {
                        body: String::new(),
                        close,
                    });
                }
                self.body_remaining = self.content_length;
                return None;
            }
            return self.reset();
        }

        // A header line.
        self.header_lines += 1;
        if self.header_lines > MAX_HEADER_LINES {
            return self.fatal();
        }
        let Some((name, value)) = line.split_once(':') else {
            return self.fatal();
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "connection" => {
                for token in value.split(',') {
                    match token.trim().to_ascii_lowercase().as_str() {
                        "close" => self.close = true,
                        "keep-alive" => self.close = false,
                        _ => {}
                    }
                }
            }
            // A delta post's body is read against Content-Length; an
            // unparseable or oversized length cannot be skipped past,
            // so those lose framing.
            "content-length" if self.delta_post => match value.parse::<usize>() {
                Ok(n) if n <= MAX_DELTA_BODY_BYTES => self.content_length = n,
                Ok(_) => self.bad = Some(Reject::TooLarge),
                Err(_) => return self.fatal(),
            },
            // Any announced body would desynchronize GET framing: we
            // would parse body bytes as the next request line. Refuse.
            "content-length" if value != "0" => self.bad = Some(Reject::Malformed),
            "transfer-encoding" => self.bad = Some(Reject::Malformed),
            _ => {}
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use websyn_common::EntityId;
    use websyn_core::{EntityMatcher, FuzzyConfig};

    fn feed(parser: &mut Box<dyn RequestParser>, lines: &[&str]) -> Vec<Request> {
        lines
            .iter()
            .filter_map(|l| parser.on_line(l.as_bytes()))
            .collect()
    }

    #[test]
    fn get_match_parses_and_percent_decodes() {
        let mut p = HttpProtocol.parser();
        let got = feed(
            &mut p,
            &["GET /match?q=indy%204+near+sf HTTP/1.1", "Host: x", ""],
        );
        assert_eq!(
            got,
            vec![Request::Query {
                query: "indy 4 near sf".to_string(),
                close: false,
            }]
        );
        // Keep-alive: the same parser frames the next request.
        let got = feed(&mut p, &["GET /stats HTTP/1.1", ""]);
        assert_eq!(got, vec![Request::Stats { close: false }]);
    }

    #[test]
    fn connection_close_and_http10_mark_the_request() {
        let mut p = HttpProtocol.parser();
        let got = feed(
            &mut p,
            &["GET /match?q=a HTTP/1.1", "Connection: close", ""],
        );
        assert_eq!(
            got,
            vec![Request::Query {
                query: "a".to_string(),
                close: true,
            }]
        );
        let mut p = HttpProtocol.parser();
        let got = feed(&mut p, &["GET /match?q=a HTTP/1.0", ""]);
        assert_eq!(
            got,
            vec![Request::Query {
                query: "a".to_string(),
                close: true,
            }]
        );
        // HTTP/1.0 with explicit keep-alive stays open.
        let mut p = HttpProtocol.parser();
        let got = feed(
            &mut p,
            &["GET /match?q=a HTTP/1.0", "Connection: Keep-Alive", ""],
        );
        assert_eq!(
            got,
            vec![Request::Query {
                query: "a".to_string(),
                close: false,
            }]
        );
    }

    #[test]
    fn errors_map_to_the_right_rejects() {
        // Unknown endpoint: 404, connection survives.
        let mut p = HttpProtocol.parser();
        assert_eq!(
            feed(&mut p, &["GET /nope HTTP/1.1", ""]),
            vec![Request::Reject {
                reject: Reject::NotFound,
                close: false,
            }]
        );
        // Bad method: 405 after the head completes.
        assert_eq!(
            feed(&mut p, &["DELETE /match?q=a HTTP/1.1", ""]),
            vec![Request::Reject {
                reject: Reject::Method,
                close: false,
            }]
        );
        // Missing q / broken escape: 400, framing intact.
        assert_eq!(
            feed(&mut p, &["GET /match HTTP/1.1", ""]),
            vec![Request::Reject {
                reject: Reject::Malformed,
                close: false,
            }]
        );
        assert_eq!(
            feed(&mut p, &["GET /match?q=bad%zz HTTP/1.1", ""]),
            vec![Request::Reject {
                reject: Reject::Malformed,
                close: false,
            }]
        );
        // Garbage request line: fatal, close, and the parser goes
        // silent (framing is unrecoverable).
        let mut p = HttpProtocol.parser();
        assert_eq!(
            feed(&mut p, &["this is not http"]),
            vec![Request::Reject {
                reject: Reject::Malformed,
                close: true,
            }]
        );
        assert_eq!(p.on_line(b"GET /match?q=a HTTP/1.1"), None);
        // A request announcing a body: 400 + close (framing would
        // desynchronize on the unread body).
        let mut p = HttpProtocol.parser();
        assert_eq!(
            feed(
                &mut p,
                &["POST /match?q=a HTTP/1.1", "Content-Length: 5", ""],
            ),
            vec![Request::Reject {
                reject: Reject::Malformed,
                close: true,
            }]
        );
    }

    #[test]
    fn post_delta_frames_a_content_length_body() {
        // Two rows, newline-terminated: Content-Length covers the
        // bytes exactly.
        let mut p = HttpProtocol.parser();
        let body = "indy five\t7\nold name\t-\n";
        let head = format!("Content-Length: {}", body.len());
        let got = feed(
            &mut p,
            &[
                "POST /admin/dict/delta HTTP/1.1",
                &head,
                "",
                "indy five\t7",
                "old name\t-",
            ],
        );
        assert_eq!(
            got,
            vec![Request::DictDelta {
                body: body.to_string(),
                close: false,
            }]
        );
        // Keep-alive: the same parser frames the next request.
        let got = feed(&mut p, &["GET /stats HTTP/1.1", ""]);
        assert_eq!(got, vec![Request::Stats { close: false }]);
    }

    #[test]
    fn post_delta_accepts_a_final_unterminated_row() {
        // Content-Length ends exactly at the row (no trailing \n) —
        // the `curl --data` shape.
        let mut p = HttpProtocol.parser();
        let got = feed(
            &mut p,
            &[
                "POST /admin/dict/delta HTTP/1.1",
                "Content-Length: 7",
                "",
                "indy\t42",
            ],
        );
        assert_eq!(
            got,
            vec![Request::DictDelta {
                body: "indy\t42".to_string(),
                close: false,
            }]
        );
        // Keep-alive holds: the consumed newline was the terminator of
        // the unterminated row, so the next request frames cleanly.
        assert_eq!(
            feed(&mut p, &["GET /stats HTTP/1.1", ""]),
            vec![Request::Stats { close: false }]
        );
    }

    #[test]
    fn post_delta_edge_cases_keep_or_lose_framing_correctly() {
        // Empty delta (Content-Length absent or 0): answered at the
        // blank line with an empty body.
        let mut p = HttpProtocol.parser();
        assert_eq!(
            feed(&mut p, &["POST /admin/dict/delta HTTP/1.1", ""]),
            vec![Request::DictDelta {
                body: String::new(),
                close: false,
            }]
        );
        // GET on the delta endpoint: wrong method, keep-alive holds.
        assert_eq!(
            feed(&mut p, &["GET /admin/dict/delta HTTP/1.1", ""]),
            vec![Request::Reject {
                reject: Reject::Method,
                close: false,
            }]
        );
        // POST anywhere else is still an unsupported method.
        assert_eq!(
            feed(&mut p, &["POST /stats HTTP/1.1", ""]),
            vec![Request::Reject {
                reject: Reject::Method,
                close: false,
            }]
        );
        // A length that ends mid-row loses framing: fatal 400 + close,
        // and the parser goes silent.
        let mut p = HttpProtocol.parser();
        assert_eq!(
            feed(
                &mut p,
                &[
                    "POST /admin/dict/delta HTTP/1.1",
                    "Content-Length: 3",
                    "",
                    "a\tlonger than three",
                ],
            ),
            vec![Request::Reject {
                reject: Reject::Malformed,
                close: true,
            }]
        );
        assert_eq!(p.on_line(b"GET /stats HTTP/1.1"), None);
        // An oversized announced body is refused without reading it.
        let mut p = HttpProtocol.parser();
        let huge = format!("Content-Length: {}", MAX_DELTA_BODY_BYTES + 1);
        assert_eq!(
            feed(&mut p, &["POST /admin/dict/delta HTTP/1.1", &huge, ""]),
            vec![Request::Reject {
                reject: Reject::TooLarge,
                close: true,
            }]
        );
        // A non-numeric length cannot be skipped past: fatal.
        let mut p = HttpProtocol.parser();
        assert_eq!(
            feed(
                &mut p,
                &["POST /admin/dict/delta HTTP/1.1", "Content-Length: zz"],
            ),
            vec![Request::Reject {
                reject: Reject::Malformed,
                close: true,
            }]
        );
    }

    #[test]
    fn percent_decode_handles_escapes_plus_and_errors() {
        assert_eq!(percent_decode("indy%204"), Some("indy 4".to_string()));
        assert_eq!(percent_decode("a+b"), Some("a b".to_string()));
        assert_eq!(percent_decode("%2B"), Some("+".to_string()));
        assert_eq!(percent_decode("caf%C3%A9"), Some("café".to_string()));
        assert_eq!(percent_decode("plain"), Some("plain".to_string()));
        // Broken escapes in every position map to None (→ 400), never
        // a panic or a silent literal pass-through.
        assert_eq!(percent_decode("bad%2"), None, "truncated escape at end");
        assert_eq!(percent_decode("bad%zz"), None, "non-hex escape");
        assert_eq!(percent_decode("%z2"), None, "non-hex first digit");
        assert_eq!(percent_decode("%"), None, "lone %");
        assert_eq!(percent_decode("a%"), None, "trailing %");
        assert_eq!(percent_decode("%%20"), None, "% escaping itself");
        assert_eq!(percent_decode("a%2%30"), None, "truncated mid-string");
        // Invalid UTF-8 after decoding is lossy, not an error.
        assert_eq!(percent_decode("%FF"), Some("\u{fffd}".to_string()));
    }

    #[test]
    fn query_param_accepts_q_anywhere_and_rejects_ambiguity() {
        // q at any position among &-separated parameters.
        assert_eq!(query_param("q=a"), Some("a"));
        assert_eq!(query_param("verbose=1&q=a"), Some("a"));
        assert_eq!(query_param("q=a&verbose=1"), Some("a"));
        assert_eq!(query_param("x=1&q=a&y=2"), Some("a"));
        assert_eq!(query_param("q="), Some(""), "empty value is a value");
        // Keys that merely start with q are not q.
        assert_eq!(query_param("qq=a"), None);
        assert_eq!(query_param("quiet=1"), None);
        // Missing, bare, or duplicated q is ambiguous → malformed.
        assert_eq!(query_param(""), None);
        assert_eq!(query_param("verbose=1"), None);
        assert_eq!(query_param("q"), None, "bare q has no value");
        assert_eq!(query_param("q&verbose=1"), None);
        assert_eq!(query_param("q=a&q=b"), None, "duplicate q");
        assert_eq!(query_param("q=a&q=a"), None, "even identical dupes");
    }

    #[test]
    fn route_extracts_q_from_any_position() {
        for target in [
            "/match?q=indy+4",
            "/match?verbose=1&q=indy+4",
            "/match?q=indy+4&verbose=1",
            "/match?a=b&q=indy+4&c=d",
        ] {
            assert_eq!(
                route(target, false),
                Request::Query {
                    query: "indy 4".to_string(),
                    close: false,
                },
                "{target}"
            );
        }
        for target in [
            "/match?q=a&q=b",       // duplicate q
            "/match?q",             // bare q
            "/match?qq=a",          // no q at all
            "/match?verbose=1",     // no q at all
            "/match?q=a&q=%zz",     // duplicate beats even a broken dupe
            "/match?verbose=1&q=%", // broken escape in a later position
        ] {
            assert_eq!(
                route(target, false),
                Request::Reject {
                    reject: Reject::Malformed,
                    close: false,
                },
                "{target}"
            );
        }
    }

    #[test]
    fn spans_json_matches_the_line_protocol_field_for_field() {
        assert_eq!(spans_json(&[]), "{\"spans\":[]}");
        let m = EntityMatcher::from_pairs(vec![
            ("indy 4", EntityId::new(7)),
            ("madagascar 2", EntityId::new(1)),
        ])
        .with_fuzzy(FuzzyConfig::default());
        let spans = m.segment("indy 4 and madagascar 2");
        assert_eq!(
            spans_json(&spans),
            "{\"spans\":[\
             {\"start\":0,\"end\":2,\"entity\":7,\"distance\":0,\"surface\":\"indy 4\"},\
             {\"start\":3,\"end\":5,\"entity\":1,\"distance\":0,\"surface\":\"madagascar 2\"}\
             ]}"
        );
        let fuzzy = m.segment("madagasacr 2");
        assert_eq!(
            spans_json(&fuzzy),
            "{\"spans\":[{\"start\":0,\"end\":2,\"entity\":1,\"distance\":1,\"surface\":\"madagascar 2\"}]}"
        );
    }

    #[test]
    fn percent_encode_round_trips_through_decode() {
        for s in ["indy 4", "caf\u{e9}+50%", "a&b=c", "~plain-text_1.2", ""] {
            assert_eq!(percent_decode(&percent_encode(s)).as_deref(), Some(s));
        }
        // Reserved characters never survive un-escaped.
        assert_eq!(percent_encode("a&b=c d+e"), "a%26b%3Dc+d%2Be");
    }

    #[test]
    fn read_response_parses_a_framed_response() {
        let raw = response(503, "Service Unavailable", "{\"error\":\"busy\"}");
        let mut reader = std::io::BufReader::new(raw.as_bytes());
        let (status, body) = read_response(&mut reader).unwrap();
        assert_eq!(status, 503);
        assert_eq!(body, "{\"error\":\"busy\"}");
        // Two back-to-back responses frame cleanly (pipelining).
        let two = [response(200, "OK", "{}"), response(404, "Not Found", "[]")].concat();
        let mut reader = std::io::BufReader::new(two.as_bytes());
        assert_eq!(read_response(&mut reader).unwrap(), (200, "{}".to_string()));
        assert_eq!(read_response(&mut reader).unwrap(), (404, "[]".to_string()));
    }

    #[test]
    fn read_response_accepts_http10_status_lines() {
        // The router reuses this client path; an HTTP/1.0 upstream
        // response must parse just like 1.1.
        let raw = "HTTP/1.0 200 OK\r\nContent-Length: 2\r\n\r\n{}";
        let mut reader = std::io::BufReader::new(raw.as_bytes());
        assert_eq!(read_response(&mut reader).unwrap(), (200, "{}".to_string()));
    }

    #[test]
    fn read_response_rejects_malformed_status_lines() {
        for raw in [
            "HTTP/2 200 OK\r\nContent-Length: 0\r\n\r\n", // unsupported version
            "HTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n", // typo'd protocol
            "HTTP/1.1\r\nContent-Length: 0\r\n\r\n",      // no status code
            "HTTP/1.1 abc Bad\r\nContent-Length: 0\r\n\r\n", // non-numeric status
            "HTTP/1.1 99999 Big\r\nContent-Length: 0\r\n\r\n", // status > u16
            "totally not http\r\n\r\n",
        ] {
            let mut reader = std::io::BufReader::new(raw.as_bytes());
            let err = read_response(&mut reader).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{raw:?}");
        }
        // Missing Content-Length is InvalidData; empty input is EOF.
        let mut reader = std::io::BufReader::new("HTTP/1.1 200 OK\r\n\r\n".as_bytes());
        assert_eq!(
            read_response(&mut reader).unwrap_err().kind(),
            io::ErrorKind::InvalidData
        );
        let mut reader = std::io::BufReader::new("".as_bytes());
        assert_eq!(
            read_response(&mut reader).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn response_head_is_content_length_framed() {
        let r = response(200, "OK", "{\"spans\":[]}");
        assert!(r.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(r.contains("Content-Length: 12\r\n"));
        assert!(r.ends_with("\r\n\r\n{\"spans\":[]}"));
    }

    #[test]
    fn reject_renders_carry_the_right_status() {
        let proto = HttpProtocol;
        for (reject, status) in [
            (Reject::Busy, "503"),
            (Reject::Shutdown, "503"),
            (Reject::TooLarge, "431"),
            (Reject::Malformed, "400"),
            (Reject::NotFound, "404"),
            (Reject::Method, "405"),
        ] {
            let r = proto.render_reject(reject);
            assert!(
                r.starts_with(&format!("HTTP/1.1 {status} ")),
                "{reject:?} → {r}"
            );
        }
        let dict = DictStats {
            segments: 2,
            delta_upserts: 5,
            delta_tombstones: 1,
            epoch: 3,
            compactions: 4,
            ..DictStats::default()
        };
        let stats = proto.render_stats(&CacheStats::default(), 2, None, dict, 5);
        assert!(stats.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(stats.contains("\"swaps\":2"));
        assert!(stats.ends_with(
            "\"window_hits\":0,\"window_misses\":0,\"segments\":2,\"delta_upserts\":5,\
             \"delta_tombstones\":1,\"epoch\":3,\"compactions\":4,\"uptime_seconds\":5}"
        ));
    }

    #[test]
    fn dict_delta_render_reports_the_lifecycle_position() {
        let dict = DictStats {
            segments: 3,
            delta_upserts: 7,
            delta_tombstones: 2,
            epoch: 1,
            revision: 9,
            compactions: 0,
            ..DictStats::default()
        };
        let ack = HttpProtocol.render_dict_delta(4, &dict);
        assert!(ack.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(ack.ends_with(
            "{\"applied\":4,\"segments\":3,\"delta_upserts\":7,\"delta_tombstones\":2,\
             \"epoch\":1,\"revision\":9,\"compactions\":0}"
        ));
    }

    #[test]
    fn metrics_and_slow_render_with_their_content_types() {
        let proto = HttpProtocol;
        let metrics =
            proto.render_metrics("# TYPE websyn_uptime_seconds gauge\nwebsyn_uptime_seconds 3\n");
        assert!(metrics.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(metrics.contains("Content-Type: text/plain; version=0.0.4\r\n"));
        assert!(metrics.ends_with("websyn_uptime_seconds 3\n"));
        let slow = proto.render_slow("{\"entries\":[]}");
        assert!(slow.contains("Content-Type: application/json\r\n"));
        assert!(slow.ends_with("{\"entries\":[]}"));
    }

    #[test]
    fn metrics_and_debug_endpoints_route() {
        let mut p = HttpProtocol.parser();
        assert_eq!(
            feed(&mut p, &["GET /metrics HTTP/1.1", ""]),
            vec![Request::Metrics { close: false }]
        );
        assert_eq!(
            feed(
                &mut p,
                &["GET /debug/slow HTTP/1.1", "Connection: close", ""]
            ),
            vec![Request::DebugSlow { close: true }]
        );
        // Nearby paths are still unknown endpoints.
        assert_eq!(
            route("/debug/slower", false),
            Request::Reject {
                reject: Reject::NotFound,
                close: false,
            }
        );
    }

    #[test]
    fn json_escaping_guards_hostile_surfaces() {
        let mut out = String::new();
        json_escape_into(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "a\\\"b\\\\c\\u000ad");
    }
}
