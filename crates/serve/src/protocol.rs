//! The transport abstraction: how requests are framed off the socket
//! and how results, statistics and rejects are rendered back.
//!
//! [`Server`](crate::Server) is transport-agnostic. Everything that
//! distinguishes one wire format from another lives behind the
//! [`Protocol`] trait:
//!
//! - **framing + parsing** — a per-connection [`RequestParser`] turns
//!   raw protocol lines into semantic [`Request`]s (the connection
//!   layer owns the byte-level line accumulation, timeouts and size
//!   caps, which are protocol-independent);
//! - **response selection** — cached results are pre-rendered once per
//!   wire format ([`crate::Rendered`]); [`Protocol::wire`] names which
//!   rendering this transport writes, so a cache hit stays a pure
//!   lookup-and-write for every protocol;
//! - **error/backpressure mapping** — semantic rejects ([`Reject`])
//!   render per protocol: a full queue is `ERR busy` on the line
//!   protocol and `503 Service Unavailable` over HTTP.
//!
//! Two implementations ship with the crate:
//! [`LineProtocol`](crate::LineProtocol) (the original line-delimited
//! TCP protocol, [`crate::proto`]) and
//! [`HttpProtocol`](crate::HttpProtocol) (std-only HTTP/1.1,
//! [`crate::http`]). Both run on the same connection handling, worker
//! pool, batch aggregator and sharded result cache.

use crate::cache::CacheStats;
use std::sync::Arc;

/// Which pre-rendered form of a cached result a transport writes.
/// Every [`crate::Rendered`] cache entry carries one rendering per
/// variant, produced on the miss that filled the entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wire {
    /// The `OK\t…` line of [`crate::proto::format_spans`].
    Line,
    /// A complete HTTP/1.1 response with a JSON body
    /// ([`crate::http::spans_json`]).
    Http,
}

/// A semantic request, decoded from the wire by a [`RequestParser`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Resolve `query` through the engine and write the result.
    Query {
        /// The raw query text (percent-decoded for HTTP).
        query: String,
        /// Close the connection once the response has been written
        /// (e.g. HTTP `Connection: close`).
        close: bool,
    },
    /// Report cache statistics (`#stats` / `GET /stats`), answered at
    /// receipt time without entering the queue.
    Stats {
        /// Close the connection after the response.
        close: bool,
    },
    /// Report the Prometheus metrics exposition (`GET /metrics` /
    /// `#metrics`), answered at receipt time without entering the
    /// queue.
    Metrics {
        /// Close the connection after the response.
        close: bool,
    },
    /// Report the slow-query trace (`GET /debug/slow` / `#slow`),
    /// answered at receipt time.
    DebugSlow {
        /// Close the connection after the response.
        close: bool,
    },
    /// Apply a dictionary delta (`POST /admin/dict/delta` / `#dict`),
    /// answered at receipt time: the body is the delta TSV
    /// ([`websyn_core::DictDelta::parse_tsv`] — `surface\tentity`
    /// upserts, `surface\t-` tombstones), applied live to the serving
    /// dictionary without a restart or base recompile.
    DictDelta {
        /// The delta TSV, exactly as it reaches the parser.
        body: String,
        /// Close the connection after the response.
        close: bool,
    },
    /// Answer with a protocol-rendered error.
    Reject {
        /// Why the request was rejected.
        reject: Reject,
        /// Close the connection after the response — mandatory when
        /// framing has been lost (the stream cannot be re-synchronized).
        close: bool,
    },
}

/// Why a request could not be served. Rejects are semantic so each
/// protocol renders them natively; the connection layer produces
/// `Busy`, `Shutdown` and `TooLarge` itself, parsers produce the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reject {
    /// The request queue is full — explicit backpressure
    /// (`ERR busy` / HTTP `503`).
    Busy,
    /// The server is shutting down (`ERR shutting-down` / HTTP `503`).
    Shutdown,
    /// A protocol line exceeded the configured size cap; the
    /// connection is dropped after the reject
    /// (`ERR line-too-long` / HTTP `431`).
    TooLarge,
    /// The request could not be parsed (HTTP `400`).
    Malformed,
    /// The request named an unknown control or endpoint
    /// (`ERR unknown-control` / HTTP `404`).
    NotFound,
    /// The HTTP method is not supported (HTTP `405`; the line protocol
    /// never produces this).
    Method,
}

/// A transport protocol the server can speak. Implementations are
/// shared across connections ([`Send`] + [`Sync`]); per-connection
/// parse state lives in the [`RequestParser`] they hand out.
pub trait Protocol: Send + Sync + 'static {
    /// Short name for logs and diagnostics (`"line"`, `"http"`).
    fn name(&self) -> &'static str;

    /// Which pre-rendered cache form this protocol writes.
    fn wire(&self) -> Wire;

    /// Bytes appended after every response payload. The line protocol
    /// terminates responses with `\n`; HTTP responses are self-framed
    /// (status line + `Content-Length`) and append nothing.
    fn terminator(&self) -> &'static [u8];

    /// Fresh parser state for one connection.
    fn parser(&self) -> Box<dyn RequestParser>;

    /// Renders a semantic reject as a complete response payload.
    fn render_reject(&self, reject: Reject) -> Arc<str>;

    /// Renders a statistics response. `window` carries the matcher's
    /// cross-batch window-cache counters when one is attached
    /// ([`websyn_core::EntityMatcher::with_window_cache`]); `dict`
    /// carries the dictionary lifecycle counters (segment count, live
    /// delta sizes, epoch, compactions); `uptime_seconds` is the
    /// engine's age.
    fn render_stats(
        &self,
        stats: &CacheStats,
        swaps: u64,
        window: Option<websyn_core::WindowCacheStats>,
        dict: websyn_core::DictStats,
        uptime_seconds: u64,
    ) -> Arc<str>;

    /// Renders the response to a successfully applied dictionary
    /// delta: `applied` is the op count of the delta, `dict` the
    /// post-apply lifecycle counters. Protocols without a delta
    /// endpoint render their not-found reject.
    fn render_dict_delta(&self, applied: usize, dict: &websyn_core::DictStats) -> Arc<str> {
        let _ = (applied, dict);
        self.render_reject(Reject::NotFound)
    }

    /// Wraps an already-assembled Prometheus text exposition as a
    /// complete response payload. Protocols without a metrics endpoint
    /// (their parsers never produce [`Request::Metrics`]) render their
    /// not-found reject.
    fn render_metrics(&self, body: &str) -> Arc<str> {
        let _ = body;
        self.render_reject(Reject::NotFound)
    }

    /// Wraps the slow-query trace JSON as a complete response payload.
    /// Same default as [`Protocol::render_metrics`].
    fn render_slow(&self, body: &str) -> Arc<str> {
        let _ = body;
        self.render_reject(Reject::NotFound)
    }
}

/// Per-connection request framing: the connection layer feeds complete
/// protocol lines (terminator stripped, raw bytes — decoding is the
/// parser's business) and gets a [`Request`] back whenever one is
/// fully framed. Line-oriented protocols answer every line; HTTP
/// accumulates a request head and answers on the blank line.
pub trait RequestParser: Send {
    /// Consumes one protocol line. `raw` carries no trailing `\n`
    /// (a trailing `\r` is the parser's to strip). Returns a request
    /// once one is complete.
    fn on_line(&mut self, raw: &[u8]) -> Option<Request>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_and_request_are_plain_data() {
        // The enums are the cross-protocol vocabulary: equality and
        // Copy/Clone semantics are part of the contract.
        assert_eq!(Reject::Busy, Reject::Busy);
        let r = Request::Query {
            query: "indy 4".to_string(),
            close: false,
        };
        assert_eq!(r.clone(), r);
        assert_eq!(Wire::Line, Wire::Line);
        assert_ne!(Wire::Line, Wire::Http);
    }
}
