//! Serving-layer observability: per-stage pipeline timers, the
//! slow-query ring, per-class reject counters, and the text assembly
//! behind `GET /metrics` and `GET /debug/slow`.
//!
//! Every request that flows through [`crate::Server`] is decomposed
//! into **non-overlapping stages**, each timed into a lock-free
//! [`websyn_obs::Histogram`] owned by the engine's [`ServeMetrics`]:
//!
//! | stage | where | what |
//! |---|---|---|
//! | `parse` | reader | protocol-line → [`crate::Request`] decoding |
//! | `queue_wait` | queue | enqueue → first item taken by a worker |
//! | `batch_assembly` | queue | batch top-up window after the first take |
//! | `cache_lookup` | engine | normalize + result-cache probe |
//! | `segment` | engine | matcher segmentation (cache misses only) |
//! | `render` | engine | response serialization + cache fill (misses only) |
//! | `write` | writer | response write + flush cycles |
//!
//! Because the stages partition disjoint slices of each request's
//! latency, the per-stage totals summed over any traffic sample are
//! bounded by the clients' observed end-to-end total — the invariant
//! `bench_check` enforces on the committed per-stage breakdown.
//!
//! The Prometheus exposition ([`prometheus_text`]) additionally
//! surfaces the matcher internals ([`websyn_core::matcher_telemetry`]:
//! window pruning, resolution-ladder rungs, candidate funnel), the
//! distance-kernel dispatch split
//! ([`websyn_text::kernel_dispatch_stats`]), result/window cache
//! counters (including selective-invalidation promotions), the
//! dictionary lifecycle (`websyn_dict_*`: segment count, live delta
//! sizes, epoch/revision, compactions, deltas applied), per-class
//! reject counters and process uptime. All values are integers, so a
//! router merging worker snapshots under `worker="N"` labels loses
//! nothing.

use crate::cache::CacheStats;
use crate::engine::Engine;
use crate::protocol::Reject;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use websyn_obs::{prometheus, Counter, Histogram, RingLog};

/// Slow-query ring capacity: enough to inspect a burst, small enough
/// that `/debug/slow` responses stay a few tens of kilobytes.
pub const SLOW_LOG_CAPACITY: usize = 128;

/// Default slow-query latency threshold (see
/// [`crate::ServerConfig::slow_threshold`]).
pub const DEFAULT_SLOW_THRESHOLD: Duration = Duration::from_millis(10);

/// Default 1-in-N sampling rate for the slow log (see
/// [`crate::ServerConfig::slow_sample_every`]).
pub const DEFAULT_SLOW_SAMPLE_EVERY: u64 = 1024;

/// Converts a duration to whole microseconds, saturating (a stage that
/// somehow runs for half a million years reports `u64::MAX`).
#[inline]
pub(crate) fn as_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// One slow-query trace entry: the (truncated) query plus its
/// per-stage latency breakdown in microseconds. `total_us` is measured
/// at the worker after resolution, so it covers parse → render but not
/// the response write (which happens after the entry is recorded).
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// The raw query, truncated to ~128 bytes on a char boundary.
    pub query: String,
    /// Receipt → resolved, microseconds (excludes the response write).
    pub total_us: u64,
    /// Protocol parse time.
    pub parse_us: u64,
    /// Enqueue → first batch item taken.
    pub queue_us: u64,
    /// Batch top-up window after the first take.
    pub assembly_us: u64,
    /// Normalize + result-cache probe.
    pub cache_us: u64,
    /// Matcher segmentation (0 on a result-cache hit).
    pub segment_us: u64,
    /// Response serialization + cache fill (0 on a hit).
    pub render_us: u64,
}

/// Truncates `query` to at most `max` bytes on a char boundary — slow
/// entries must stay bounded even for maximum-line-length queries.
pub(crate) fn truncate_query(query: &str, max: usize) -> String {
    if query.len() <= max {
        return query.to_string();
    }
    let mut end = max;
    while !query.is_char_boundary(end) {
        end -= 1;
    }
    query[..end].to_string()
}

impl SlowEntry {
    fn json_into(&self, out: &mut String) {
        use std::fmt::Write;
        out.push_str("{\"query\":\"");
        crate::http::json_escape_into(out, &self.query);
        let _ = write!(
            out,
            "\",\"total_us\":{},\"parse_us\":{},\"queue_us\":{},\"assembly_us\":{},\"cache_us\":{},\"segment_us\":{},\"render_us\":{}}}",
            self.total_us,
            self.parse_us,
            self.queue_us,
            self.assembly_us,
            self.cache_us,
            self.segment_us,
            self.render_us,
        );
    }
}

/// The per-engine serving metrics: stage histograms, the slow-query
/// ring, and the slow-log configuration the server installed. One per
/// [`Engine`] — which in the cluster topology means one per worker
/// process, exactly the granularity the router's per-worker merge
/// wants.
#[derive(Debug)]
pub struct ServeMetrics {
    started: Instant,
    /// Protocol-line → request decoding.
    pub parse: Histogram,
    /// Enqueue → first batch item taken by a worker.
    pub queue_wait: Histogram,
    /// Batch top-up window after the first take.
    pub batch_assembly: Histogram,
    /// Normalize + result-cache probe.
    pub cache_lookup: Histogram,
    /// Matcher segmentation (recorded on result-cache misses only).
    pub segment: Histogram,
    /// Response serialization + cache fill (misses only).
    pub render: Histogram,
    /// Response write + flush cycles.
    pub write: Histogram,
    /// The bounded slow-query trace.
    pub slow: RingLog<SlowEntry>,
    /// Drives the 1-in-N slow-log sample (`incr() % every == 0`).
    pub(crate) sampler: Counter,
    slow_threshold_us: AtomicU64,
    slow_sample_every: AtomicU64,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ServeMetrics {
    /// Fresh metrics; uptime starts now.
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            parse: Histogram::new(),
            queue_wait: Histogram::new(),
            batch_assembly: Histogram::new(),
            cache_lookup: Histogram::new(),
            segment: Histogram::new(),
            render: Histogram::new(),
            write: Histogram::new(),
            slow: RingLog::new(SLOW_LOG_CAPACITY),
            sampler: Counter::new(),
            slow_threshold_us: AtomicU64::new(as_us(DEFAULT_SLOW_THRESHOLD)),
            slow_sample_every: AtomicU64::new(DEFAULT_SLOW_SAMPLE_EVERY),
        }
    }

    /// Whole seconds since the engine was created.
    pub fn uptime_seconds(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// The stage histograms with their exposition names, pipeline
    /// order.
    pub fn stages(&self) -> [(&'static str, &Histogram); 7] {
        [
            ("parse", &self.parse),
            ("queue_wait", &self.queue_wait),
            ("batch_assembly", &self.batch_assembly),
            ("cache_lookup", &self.cache_lookup),
            ("segment", &self.segment),
            ("render", &self.render),
            ("write", &self.write),
        ]
    }

    /// Installs the slow-log gate the server was configured with (see
    /// [`crate::ServerConfig`]); reflected in [`slow_json`] so the
    /// debug endpoint reports the live thresholds.
    pub fn set_slow_config(&self, threshold: Duration, sample_every: u64) {
        self.slow_threshold_us
            .store(as_us(threshold), Ordering::Relaxed);
        self.slow_sample_every
            .store(sample_every.max(1), Ordering::Relaxed);
    }

    /// The installed slow-query threshold, microseconds.
    pub fn slow_threshold_us(&self) -> u64 {
        self.slow_threshold_us.load(Ordering::Relaxed)
    }

    /// The installed 1-in-N slow-log sampling rate.
    pub fn slow_sample_every(&self) -> u64 {
        self.slow_sample_every.load(Ordering::Relaxed).max(1)
    }
}

/// Reject classes in render order, paired with [`Reject`] variants by
/// [`reject_class`].
pub const REJECT_CLASSES: [&str; 6] = [
    "busy",
    "shutdown",
    "too_large",
    "malformed",
    "not_found",
    "method",
];

/// Per-class reject counters. Process-wide statics: both the worker
/// server and the cluster router count through the same function, and
/// each is its own process, so the totals are per-process series —
/// exactly what `/metrics` exposes.
static REJECTS: [Counter; 6] = [
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
    Counter::new(),
];

/// The [`REJECT_CLASSES`] label of `reject`.
pub fn reject_class(reject: Reject) -> &'static str {
    REJECT_CLASSES[reject_index(reject)]
}

fn reject_index(reject: Reject) -> usize {
    match reject {
        Reject::Busy => 0,
        Reject::Shutdown => 1,
        Reject::TooLarge => 2,
        Reject::Malformed => 3,
        Reject::NotFound => 4,
        Reject::Method => 5,
    }
}

/// Counts one rejected (error-answered) request in its class. Called
/// at every render-reject site on both protocols and in the router.
pub fn count_reject(reject: Reject) {
    REJECTS[reject_index(reject)].incr();
}

/// Point-in-time per-class reject totals, in [`REJECT_CLASSES`] order.
pub fn reject_counts() -> [(&'static str, u64); 6] {
    let mut out = [("", 0u64); 6];
    for (slot, (class, counter)) in out.iter_mut().zip(REJECT_CLASSES.iter().zip(&REJECTS)) {
        *slot = (class, counter.get());
    }
    out
}

/// Renders the process's full Prometheus text exposition: uptime,
/// stage histograms, reject classes, result/window cache counters,
/// matcher telemetry and the distance-kernel dispatch split.
pub fn prometheus_text(engine: &Engine) -> String {
    let m = engine.metrics();
    let mut out = String::with_capacity(4096);

    prometheus::write_type(&mut out, "websyn_uptime_seconds", "gauge");
    prometheus::write_series(&mut out, "websyn_uptime_seconds", "", m.uptime_seconds());

    prometheus::write_type(&mut out, "websyn_stage_duration_us", "histogram");
    for (stage, histogram) in m.stages() {
        prometheus::write_histogram(
            &mut out,
            "websyn_stage_duration_us",
            &format!("stage=\"{stage}\""),
            &histogram.snapshot(),
        );
    }

    prometheus::write_type(&mut out, "websyn_rejects_total", "counter");
    for (class, count) in reject_counts() {
        prometheus::write_series(
            &mut out,
            "websyn_rejects_total",
            &format!("class=\"{class}\""),
            count,
        );
    }

    let cache: CacheStats = engine.cache_stats();
    for (name, kind, value) in [
        ("websyn_cache_hits_total", "counter", cache.hits),
        ("websyn_cache_misses_total", "counter", cache.misses),
        ("websyn_cache_evictions_total", "counter", cache.evictions),
        ("websyn_cache_promotions_total", "counter", cache.promotions),
        ("websyn_cache_entries", "gauge", cache.entries as u64),
        ("websyn_swaps_total", "counter", engine.swaps()),
    ] {
        prometheus::write_type(&mut out, name, kind);
        prometheus::write_series(&mut out, name, "", value);
    }

    // Dictionary lifecycle: where the served dictionary sits in its
    // base → deltas → compaction cycle, and how many live updates the
    // engine has absorbed.
    let dict = engine.dict_stats();
    for (name, kind, value) in [
        ("websyn_dict_surfaces", "gauge", dict.surfaces as u64),
        ("websyn_dict_segments", "gauge", dict.segments as u64),
        (
            "websyn_dict_delta_upserts",
            "gauge",
            dict.delta_upserts as u64,
        ),
        (
            "websyn_dict_delta_tombstones",
            "gauge",
            dict.delta_tombstones as u64,
        ),
        ("websyn_dict_epoch", "gauge", dict.epoch),
        ("websyn_dict_revision", "counter", dict.revision),
        ("websyn_dict_compactions_total", "counter", dict.compactions),
        ("websyn_deltas_applied_total", "counter", engine.deltas()),
    ] {
        prometheus::write_type(&mut out, name, kind);
        prometheus::write_series(&mut out, name, "", value);
    }

    let window = engine.window_cache_stats().unwrap_or_default();
    for (name, kind, value) in [
        ("websyn_window_cache_hits_total", "counter", window.hits),
        ("websyn_window_cache_misses_total", "counter", window.misses),
        (
            "websyn_window_cache_entries",
            "gauge",
            window.entries as u64,
        ),
    ] {
        prometheus::write_type(&mut out, name, kind);
        prometheus::write_series(&mut out, name, "", value);
    }

    let t = websyn_core::matcher_telemetry();
    for (name, value) in [
        ("websyn_matcher_windows_resolved_total", t.windows_resolved),
        ("websyn_matcher_windows_pruned_total", t.windows_pruned),
        ("websyn_matcher_ladder_memo_hits_total", t.ladder_memo_hits),
        (
            "websyn_matcher_ladder_cache_hits_total",
            t.ladder_cache_hits,
        ),
        (
            "websyn_matcher_ladder_full_resolves_total",
            t.ladder_full_resolves,
        ),
        (
            "websyn_matcher_candidates_proposed_total",
            t.candidates_proposed,
        ),
        (
            "websyn_matcher_candidates_verified_total",
            t.candidates_verified,
        ),
    ] {
        prometheus::write_type(&mut out, name, "counter");
        prometheus::write_series(&mut out, name, "", value);
    }

    let kernels = websyn_text::kernel_dispatch_stats();
    for (name, value) in [
        ("websyn_distance_bitpar_total", kernels.bitpar),
        ("websyn_distance_banded_total", kernels.banded),
    ] {
        prometheus::write_type(&mut out, name, "counter");
        prometheus::write_series(&mut out, name, "", value);
    }

    prometheus::write_type(&mut out, "websyn_slow_recorded_total", "counter");
    prometheus::write_series(
        &mut out,
        "websyn_slow_recorded_total",
        "",
        m.slow.recorded(),
    );

    out
}

/// Renders the slow-query trace as the `/debug/slow` JSON body:
/// the installed gate, the ring accounting, and the retained entries
/// (oldest first).
pub fn slow_json(engine: &Engine) -> String {
    use std::fmt::Write;
    let m = engine.metrics();
    let entries = m.slow.entries();
    let mut out = String::with_capacity(256 + entries.len() * 192);
    let _ = write!(
        out,
        "{{\"threshold_us\":{},\"sample_every\":{},\"capacity\":{},\"recorded\":{},\"entries\":[",
        m.slow_threshold_us(),
        m.slow_sample_every(),
        m.slow.capacity(),
        m.slow.recorded(),
    );
    for (i, entry) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        entry.json_into(&mut out);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reject_classes_cover_every_variant() {
        for (reject, class) in [
            (Reject::Busy, "busy"),
            (Reject::Shutdown, "shutdown"),
            (Reject::TooLarge, "too_large"),
            (Reject::Malformed, "malformed"),
            (Reject::NotFound, "not_found"),
            (Reject::Method, "method"),
        ] {
            assert_eq!(reject_class(reject), class);
        }
        // Counting lands in the right class (statics are process-wide,
        // so assert on deltas, not absolutes).
        let before = reject_counts()[reject_index(Reject::TooLarge)].1;
        count_reject(Reject::TooLarge);
        assert_eq!(
            reject_counts()[reject_index(Reject::TooLarge)].1,
            before + 1
        );
    }

    #[test]
    fn slow_entries_render_as_json_and_truncate() {
        let entry = SlowEntry {
            query: "indy \"4\"".to_string(),
            total_us: 12_000,
            parse_us: 5,
            queue_us: 40,
            assembly_us: 100,
            cache_us: 9,
            segment_us: 11_000,
            render_us: 30,
        };
        let mut out = String::new();
        entry.json_into(&mut out);
        assert!(out.starts_with("{\"query\":\"indy \\\"4\\\"\",\"total_us\":12000,"));
        assert!(out.ends_with("\"render_us\":30}"));
        // Truncation respects char boundaries.
        let long = "é".repeat(100);
        let cut = truncate_query(&long, 7);
        assert_eq!(cut, "é".repeat(3));
        assert_eq!(truncate_query("short", 128), "short");
    }

    #[test]
    fn serve_metrics_stage_table_is_ordered_and_complete() {
        let m = ServeMetrics::new();
        m.parse.record(3);
        m.write.record(9);
        let names: Vec<&str> = m.stages().iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "parse",
                "queue_wait",
                "batch_assembly",
                "cache_lookup",
                "segment",
                "render",
                "write"
            ]
        );
        assert_eq!(m.stages()[0].1.snapshot().count(), 1);
        assert_eq!(m.stages()[6].1.snapshot().sum, 9);
        // Slow config round-trips through the atomics.
        m.set_slow_config(Duration::from_millis(2), 0);
        assert_eq!(m.slow_threshold_us(), 2000);
        assert_eq!(m.slow_sample_every(), 1, "0 clamps to every request");
    }
}
