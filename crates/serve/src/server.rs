//! The TCP front end: accept loop, pipelined connections, batch
//! aggregation, worker pool, graceful shutdown — all transport-agnostic.
//!
//! The server speaks whatever [`Protocol`] it was started with
//! ([`Server::start_with`]); [`Server::start`] defaults to the original
//! line protocol. Everything below the protocol boundary — byte-level
//! line accumulation, size caps, timeouts, the queue, the workers, the
//! response re-sequencer — is shared by every transport.
//!
//! Threading model (all std, shared-nothing where it matters):
//!
//! - an **accept thread** owns the listener and spawns one handler per
//!   connection;
//! - each **connection** runs a reader and a writer. The reader
//!   accumulates protocol lines, feeds them through the connection's
//!   [`RequestParser`], and pushes query jobs into the shared
//!   [`BoundedQueue`] — clients may pipeline arbitrarily many requests
//!   without waiting. The writer re-sequences responses (workers
//!   complete batches out of order relative to other connections'
//!   batches) and writes them back in request order;
//! - a **worker pool** drains the queue in time/count-windowed batches
//!   ([`BoundedQueue::pop_batch`]) and resolves each batch through
//!   [`Engine::resolve_rendered_batch`] — responses come back as the
//!   cache's shared pre-rendered payloads (one per wire format), so a
//!   hit writes without any formatting work on *any* transport. The
//!   workers *are* the shards: each processes its batch sequentially on
//!   its own core with one cache pass and one private
//!   [`websyn_core::MatchScratch`] (the same shared-nothing,
//!   memo-per-shard discipline as `EntityMatcher::match_batch`, but
//!   with shards driven by real traffic instead of a fixed pre-split
//!   batch);
//! - **backpressure**: a full queue rejects the request immediately
//!   with the protocol's rendering of [`Reject::Busy`] (`ERR busy` /
//!   HTTP `503`) instead of queueing unboundedly — the client sees the
//!   overload in-band, in request order;
//! - **shutdown**: [`ServerHandle::shutdown`] flips a flag, nudges the
//!   accept loop awake, joins every connection (readers poll the flag
//!   on a read timeout), closes the queue — pending requests still
//!   drain — and joins the workers. Requests racing the wind-down get
//!   [`Reject::Shutdown`] (`ERR shutting-down` / HTTP `503`).

use crate::engine::{Engine, StageTiming};
use crate::metrics::{self, as_us, ServeMetrics, SlowEntry};
use crate::proto::LineProtocol;
use crate::protocol::{Protocol, Reject, Request, Wire};
use crate::queue::{BoundedQueue, PushError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Tuning for the serving front end. [`ServerConfig::builder`] is the
/// ergonomic way to set these; the struct stays public (and `Copy`) so
/// a tuned config can be computed and passed around as plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads draining the request queue. Defaults to the
    /// machine's available parallelism.
    pub workers: usize,
    /// Request queue capacity; pushes beyond it are rejected with the
    /// protocol's busy rendering (explicit backpressure, no unbounded
    /// growth).
    pub queue_depth: usize,
    /// Maximum queries a worker coalesces into one matcher batch.
    pub batch_max: usize,
    /// How long a worker waits to top up a partial batch. Bounds the
    /// queueing latency a lone request can see.
    pub batch_window: Duration,
    /// Socket read timeout — the shutdown-poll interval for idle
    /// connections, not a client deadline (reads simply retry).
    pub read_timeout: Duration,
    /// Socket write timeout; a client that stops reading for this long
    /// has its connection dropped.
    pub write_timeout: Duration,
    /// Maximum protocol-line length in bytes (a query line, or one
    /// HTTP request/header line). A connection that exceeds it (e.g.
    /// streams data with no newline) gets one reject and is dropped —
    /// per-connection buffering stays bounded no matter what the client
    /// sends.
    pub max_line_bytes: usize,
    /// Maximum live connections. Accepts beyond the cap are dropped
    /// immediately, so connection count (each costs two threads) stays
    /// bounded even against a client that opens sockets and never
    /// sends a request — traffic the queue bound cannot see.
    pub max_connections: usize,
    /// Requests slower than this (receipt → resolved) are recorded in
    /// the engine's slow-query ring (`GET /debug/slow`).
    pub slow_threshold: Duration,
    /// Additionally record every Nth request regardless of latency, so
    /// the trace carries a baseline sample even when nothing is slow
    /// (clamped to ≥ 1).
    pub slow_sample_every: u64,
}

/// The pre-redesign name of [`ServerConfig`], kept as an alias so
/// existing call sites (including struct literals) keep compiling.
pub type ServeConfig = ServerConfig;

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            queue_depth: 1024,
            batch_max: 64,
            batch_window: Duration::from_micros(500),
            read_timeout: Duration::from_millis(25),
            write_timeout: Duration::from_secs(5),
            max_line_bytes: 64 * 1024,
            max_connections: 1024,
            slow_threshold: crate::metrics::DEFAULT_SLOW_THRESHOLD,
            slow_sample_every: crate::metrics::DEFAULT_SLOW_SAMPLE_EVERY,
        }
    }
}

impl ServerConfig {
    /// Starts from the defaults; see [`ServerConfigBuilder`].
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            config: Self::default(),
        }
    }
}

/// Builder for [`ServerConfig`] — validated knobs over field soup.
///
/// Starts from [`ServerConfig::default`]; [`ServerConfigBuilder::build`]
/// clamps every knob into its valid range (counts ≥ 1, timeouts ≥ 1ms
/// so shutdown polling and write deadlines cannot be disabled by a
/// zero) rather than failing, so a config assembled from untrusted
/// flags still produces a working server.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use websyn_serve::ServerConfig;
///
/// let config = ServerConfig::builder()
///     .workers(4)
///     .queue_depth(256)
///     .batch_max(32)
///     .batch_window(Duration::from_micros(100))
///     .build();
/// assert_eq!(config.workers, 4);
/// assert_eq!(ServerConfig::builder().workers(0).build().workers, 1);
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    config: ServerConfig,
}

impl ServerConfigBuilder {
    /// Worker threads draining the request queue (clamped to ≥ 1).
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Request queue capacity (clamped to ≥ 1).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.config.queue_depth = depth;
        self
    }

    /// Maximum queries per worker batch (clamped to ≥ 1).
    pub fn batch_max(mut self, max: usize) -> Self {
        self.config.batch_max = max;
        self
    }

    /// How long a worker waits to top up a partial batch (zero is
    /// valid: drain-what's-there batching).
    pub fn batch_window(mut self, window: Duration) -> Self {
        self.config.batch_window = window;
        self
    }

    /// Socket read timeout / shutdown-poll interval (clamped to ≥ 1ms —
    /// a zero read timeout means *blocking* reads on std sockets, which
    /// would make idle connections unkillable).
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.config.read_timeout = timeout;
        self
    }

    /// Socket write timeout (clamped to ≥ 1ms, same reasoning).
    pub fn write_timeout(mut self, timeout: Duration) -> Self {
        self.config.write_timeout = timeout;
        self
    }

    /// Maximum protocol-line length in bytes (clamped to ≥ 1).
    pub fn max_line_bytes(mut self, bytes: usize) -> Self {
        self.config.max_line_bytes = bytes;
        self
    }

    /// Maximum live connections (clamped to ≥ 1).
    pub fn max_connections(mut self, connections: usize) -> Self {
        self.config.max_connections = connections;
        self
    }

    /// Slow-query trace latency threshold.
    pub fn slow_threshold(mut self, threshold: Duration) -> Self {
        self.config.slow_threshold = threshold;
        self
    }

    /// Record every Nth request in the slow trace regardless of
    /// latency (clamped to ≥ 1).
    pub fn slow_sample_every(mut self, every: u64) -> Self {
        self.config.slow_sample_every = every;
        self
    }

    /// Validates the knobs (clamping them into range) and returns the
    /// config.
    pub fn build(self) -> ServerConfig {
        let c = self.config;
        ServerConfig {
            workers: c.workers.max(1),
            queue_depth: c.queue_depth.max(1),
            batch_max: c.batch_max.max(1),
            batch_window: c.batch_window,
            read_timeout: c.read_timeout.max(Duration::from_millis(1)),
            write_timeout: c.write_timeout.max(Duration::from_millis(1)),
            max_line_bytes: c.max_line_bytes.max(1),
            max_connections: c.max_connections.max(1),
            slow_threshold: c.slow_threshold,
            slow_sample_every: c.slow_sample_every.max(1),
        }
    }
}

/// A sequenced response on its way back to a connection's writer: the
/// payload (terminator-free), and whether the connection closes after
/// writing it.
type Reply = (u64, Arc<str>, bool);

/// One in-flight request: the decoded query, its per-connection
/// sequence number, which wire rendering to answer with, whether the
/// connection closes after the response, and the connection's response
/// channel.
struct Job {
    seq: u64,
    query: String,
    wire: Wire,
    close: bool,
    reply: Sender<Reply>,
    /// When the request's first protocol line was read — the anchor of
    /// the slow-trace total.
    received_at: Instant,
    /// When the job entered the queue (queue-wait stage starts here).
    enqueued_at: Instant,
    /// Protocol parse time, microseconds.
    parse_us: u64,
}

/// The serving front end. `start`/`start_with` are the only entry
/// points; the running server is controlled through the returned
/// [`ServerHandle`].
pub struct Server;

impl Server {
    /// Binds `addr` and serves the line protocol — equivalent to
    /// [`Server::start_with`] with [`LineProtocol`].
    ///
    /// # Errors
    /// Returns the bind error if the address is unavailable.
    pub fn start<A: ToSocketAddrs>(
        engine: Arc<Engine>,
        addr: A,
        config: ServerConfig,
    ) -> io::Result<ServerHandle> {
        Self::start_with(engine, addr, config, Arc::new(LineProtocol))
    }

    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port),
    /// spawns the accept loop and worker pool serving `protocol`, and
    /// returns immediately. One engine may back any number of servers —
    /// e.g. a line endpoint and an HTTP endpoint sharing one cache.
    ///
    /// # Errors
    /// Returns the bind error if the address is unavailable.
    pub fn start_with<A: ToSocketAddrs>(
        engine: Arc<Engine>,
        addr: A,
        config: ServerConfig,
        protocol: Arc<dyn Protocol>,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let queue = Arc::new(BoundedQueue::new(config.queue_depth));
        let shutdown = Arc::new(AtomicBool::new(false));
        engine
            .metrics()
            .set_slow_config(config.slow_threshold, config.slow_sample_every);

        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || worker_loop(&engine, &queue, config))
            })
            .collect();

        let accept = {
            let queue = Arc::clone(&queue);
            let engine = Arc::clone(&engine);
            let shutdown = Arc::clone(&shutdown);
            let protocol = Arc::clone(&protocol);
            std::thread::spawn(move || {
                accept_loop(&listener, &engine, &queue, &shutdown, &protocol, config);
            })
        };

        Ok(ServerHandle {
            addr: local_addr,
            engine,
            protocol,
            queue,
            shutdown,
            accept: Some(accept),
            workers,
        })
    }
}

/// Control of a running server: its address, its engine (for dictionary
/// swaps and stats), and graceful shutdown. Dropping the handle shuts
/// the server down too.
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<Engine>,
    protocol: Arc<dyn Protocol>,
    queue: Arc<BoundedQueue<Job>>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind the server — swap dictionaries or read cache
    /// stats through this while the server runs.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// The protocol this server speaks.
    pub fn protocol(&self) -> &Arc<dyn Protocol> {
        &self.protocol
    }

    /// Gracefully stops the server: no new connections, in-flight
    /// requests drain, every thread is joined. Returns once everything
    /// has stopped.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.accept.is_none() && self.workers.is_empty() {
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        // Close the queue first: already-accepted requests drain and
        // get real responses, while anything arriving during the
        // wind-down is rejected in-band with the protocol's shutdown
        // rendering instead of being served from a dying process.
        self.queue.close();
        // The accept loop polls a nonblocking listener, so it observes
        // the flag within one poll interval on its own. The self-
        // connect is only a best-effort nudge to wake it a little
        // sooner; shutdown does not depend on it succeeding.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Accepts connections until shutdown, then joins every handler.
fn accept_loop(
    listener: &TcpListener,
    engine: &Arc<Engine>,
    queue: &Arc<BoundedQueue<Job>>,
    shutdown: &Arc<AtomicBool>,
    protocol: &Arc<dyn Protocol>,
    config: ServerConfig,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    // Nonblocking accept + flag polling: shutdown never depends on a
    // wake-up connection reaching us (which can fail under fd
    // exhaustion or on wildcard binds — exactly the moments an
    // operator is trying to stop the server).
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                // Accepted sockets inherit nonblocking mode on some
                // platforms; connection io must block (with its own
                // timeouts).
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                stream
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(_) => {
                // Persistent accept errors (fd exhaustion under a
                // connection flood) would otherwise busy-spin this
                // loop at 100% CPU exactly when the server is
                // overloaded — back off briefly instead.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        handlers.retain(|h| !h.is_finished());
        if handlers.len() >= config.max_connections.max(1) {
            // Shed the connection outright: the client sees an
            // immediate close instead of a server that silently grows
            // a thread per idle socket.
            drop(stream);
            continue;
        }
        let engine = Arc::clone(engine);
        let queue = Arc::clone(queue);
        let shutdown = Arc::clone(shutdown);
        let protocol = Arc::clone(protocol);
        handlers.push(std::thread::spawn(move || {
            let _ = handle_connection(stream, &engine, &queue, &shutdown, &*protocol, config);
        }));
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// One worker: drain windowed batches, resolve, reply with each job's
/// wire rendering.
fn worker_loop(engine: &Engine, queue: &BoundedQueue<Job>, config: ServerConfig) {
    let m = engine.metrics();
    let mut batch: Vec<Job> = Vec::with_capacity(config.batch_max);
    let mut timings: Vec<StageTiming> = Vec::with_capacity(config.batch_max);
    while let Some(first_taken) =
        queue.pop_batch_timed(config.batch_max, config.batch_window, &mut batch)
    {
        // Queue wait is per-job (enqueue → first take); assembly is the
        // span the job actually spent in the batch-collection window
        // (first take → handover, clipped to the job's own arrival for
        // items that joined mid-window). Clipping keeps each request's
        // stage spans disjoint, so summed stage time can never exceed
        // summed end-to-end latency — the invariant bench_check holds
        // the committed artifact to.
        let assembled = Instant::now();
        for job in &batch {
            m.queue_wait.record(as_us(
                first_taken.saturating_duration_since(job.enqueued_at),
            ));
            let joined = job.enqueued_at.max(first_taken);
            m.batch_assembly
                .record(as_us(assembled.saturating_duration_since(joined)));
        }
        let queries: Vec<&str> = batch.iter().map(|job| job.query.as_str()).collect();
        let results = engine.resolve_rendered_batch_timed(&queries, &mut timings);
        // The engine cleared and refilled `timings`: exactly one entry
        // per job, index-aligned — the zip below depends on it.
        debug_assert_eq!(timings.len(), batch.len());
        let threshold_us = m.slow_threshold_us();
        let sample_every = m.slow_sample_every();
        for ((job, stage), rendered) in batch.iter().zip(&timings).zip(results) {
            // The slow gate runs before the reply send so `total_us`
            // has a fixed meaning (receipt → resolved, write excluded)
            // regardless of how fast the client drains its socket.
            let total_us = as_us(job.received_at.elapsed());
            if total_us >= threshold_us || m.sampler.incr().is_multiple_of(sample_every) {
                m.slow.push(SlowEntry {
                    query: metrics::truncate_query(&job.query, 128),
                    total_us,
                    parse_us: job.parse_us,
                    queue_us: as_us(first_taken.saturating_duration_since(job.enqueued_at)),
                    assembly_us: as_us(
                        assembled.saturating_duration_since(job.enqueued_at.max(first_taken)),
                    ),
                    cache_us: stage.cache_us,
                    segment_us: stage.segment_us,
                    render_us: stage.render_us,
                });
            }
            // A send error means the connection died mid-flight; the
            // result is simply dropped. Every rendering was serialized
            // when the cache entry was filled — a hit sends a shared
            // `Arc<str>` without touching a serializer, whichever wire
            // the job arrived on.
            let _ = job
                .reply
                .send((job.seq, rendered.for_wire(job.wire), job.close));
        }
    }
}

/// Serves one connection: reader (scoped thread) feeds the queue,
/// writer (this thread) re-sequences and responds.
fn handle_connection(
    stream: TcpStream,
    engine: &Arc<Engine>,
    queue: &Arc<BoundedQueue<Job>>,
    shutdown: &Arc<AtomicBool>,
    protocol: &dyn Protocol,
    config: ServerConfig,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let read_half = stream.try_clone()?;
    let (tx, rx) = std::sync::mpsc::channel::<Reply>();
    std::thread::scope(|scope| {
        scope.spawn(|| reader_loop(read_half, engine, queue, shutdown, protocol, tx, config));
        let result = writer_loop(&stream, rx, protocol.terminator(), engine.metrics());
        // If the writer died first (write timeout — the client stopped
        // reading — or a close-marked response), the reader would
        // otherwise keep parsing and enqueuing work whose results
        // nobody can receive. Shut the socket down so the reader's next
        // read fails and the whole connection is torn down. (On the
        // normal path the reader has already exited and this is a
        // no-op on a closing socket.)
        let _ = stream.shutdown(std::net::Shutdown::Both);
        result
    })
}

/// Feeds protocol lines through the connection's [`RequestParser`] and
/// dispatches the requests it produces; responds in-band to stats
/// requests, parse rejects and backpressure rejects (through the same
/// sequenced channel, so ordering is preserved).
fn reader_loop(
    read_half: TcpStream,
    engine: &Engine,
    queue: &BoundedQueue<Job>,
    shutdown: &AtomicBool,
    protocol: &dyn Protocol,
    reply: Sender<Reply>,
    config: ServerConfig,
) {
    let wire = protocol.wire();
    let mut parser = protocol.parser();
    let m = engine.metrics();
    let mut reader = BufReader::new(read_half);
    // Lines accumulate as raw bytes: `read_line`'s UTF-8 guard would
    // silently discard a partial read that a timeout cut mid-way
    // through a multi-byte character, corrupting the stream. Bytes are
    // decoded only once a line is complete — by the parser, whose
    // business decoding is.
    let mut line: Vec<u8> = Vec::new();
    let mut seq = 0u64;
    // Parse-stage accounting. A request may span many protocol lines
    // (HTTP headers), so parse time accumulates across `on_line` calls
    // and `request_started` anchors at the request's *first* line —
    // that instant is the receipt time the slow trace measures from.
    let mut parse_acc = Duration::ZERO;
    let mut request_started: Option<Instant> = None;
    // Dispatches one complete (still byte-form, terminator-stripped)
    // protocol line; returns false when reading must stop — the writer
    // is gone, or a close-marked request was dispatched.
    let mut handle = |raw: &[u8], seq: &mut u64| -> bool {
        let line_start = Instant::now();
        let received_at = *request_started.get_or_insert(line_start);
        let parsed = parser.on_line(raw);
        parse_acc += line_start.elapsed();
        let Some(request) = parsed else {
            // Mid-request (an HTTP header line): nothing to answer yet,
            // and no sequence number consumed.
            return true;
        };
        let parse_us = as_us(parse_acc);
        m.parse.record(parse_us);
        parse_acc = Duration::ZERO;
        request_started = None;
        let (response, close): (Option<Arc<str>>, bool) = match request {
            Request::Query { query, close } => {
                match queue.push(Job {
                    seq: *seq,
                    query,
                    wire,
                    close,
                    reply: reply.clone(),
                    received_at,
                    enqueued_at: Instant::now(),
                    parse_us,
                }) {
                    Ok(()) => (None, close),
                    Err(PushError::Full) => {
                        metrics::count_reject(Reject::Busy);
                        (Some(protocol.render_reject(Reject::Busy)), close)
                    }
                    Err(PushError::Closed) => {
                        metrics::count_reject(Reject::Shutdown);
                        (Some(protocol.render_reject(Reject::Shutdown)), close)
                    }
                }
            }
            // Stats, metrics and the slow trace are answered at receipt
            // time, never queued.
            Request::Stats { close } => (
                Some(protocol.render_stats(
                    &engine.cache_stats(),
                    engine.swaps(),
                    engine.window_cache_stats(),
                    engine.dict_stats(),
                    engine.uptime_seconds(),
                )),
                close,
            ),
            // Dictionary deltas are applied before the acknowledgement
            // is written: once the client sees the 200, the new
            // surfaces are live for every subsequent query.
            Request::DictDelta { body, close } => match engine.apply_delta_tsv(&body) {
                Ok((applied, stats)) => (Some(protocol.render_dict_delta(applied, &stats)), close),
                Err(_) => {
                    metrics::count_reject(Reject::Malformed);
                    (Some(protocol.render_reject(Reject::Malformed)), close)
                }
            },
            Request::Metrics { close } => (
                Some(protocol.render_metrics(&metrics::prometheus_text(engine))),
                close,
            ),
            Request::DebugSlow { close } => (
                Some(protocol.render_slow(&metrics::slow_json(engine))),
                close,
            ),
            Request::Reject { reject, close } => {
                metrics::count_reject(reject);
                (Some(protocol.render_reject(reject)), close)
            }
        };
        let alive = match response {
            Some(response) => reply.send((*seq, response, close)).is_ok(),
            None => true,
        };
        *seq += 1;
        // After a close-marked request the client gets its response
        // (the writer exits after writing it) but nothing further is
        // read — for HTTP this is `Connection: close` semantics.
        alive && !close
    };
    loop {
        // Bound the per-connection buffer: once the (terminated or
        // not) line exceeds the cap, answer once and drop the
        // connection — we cannot resynchronize mid-line. The `take`
        // below guarantees `line` never grows past cap + 1 bytes even
        // against a client streaming data with no newline.
        if line.len() > config.max_line_bytes {
            metrics::count_reject(Reject::TooLarge);
            let _ = reply.send((seq, protocol.render_reject(Reject::TooLarge), true));
            break;
        }
        let allowed = (config.max_line_bytes + 1 - line.len()) as u64;
        match (&mut reader).take(allowed).read_until(b'\n', &mut line) {
            // True EOF (`allowed` is never 0 here): the client closed
            // its half. Process a final unterminated line, then stop.
            Ok(0) => {
                if !line.is_empty() {
                    handle(&line, &mut seq);
                }
                break;
            }
            Ok(_) => {
                if line.last() != Some(&b'\n') {
                    // Mid-line: either the cap cut the read (caught at
                    // the top of the loop) or the client hit EOF
                    // without a newline (next read returns Ok(0)).
                    continue;
                }
                line.pop(); // the parser contract: no trailing '\n'
                if !handle(&line, &mut seq) {
                    break;
                }
                line.clear();
                // A client that streams requests back-to-back never
                // hits the read-timeout branch, so shutdown must also
                // be observed here or a busy connection would block
                // ServerHandle::shutdown indefinitely.
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            // Timeout: `line` keeps any partial read; poll the flag
            // and retry.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // Dropping `reply` here lets the writer exit once the last queued
    // job for this connection has been answered.
}

/// Writes responses in request order: workers may answer out of order
/// across batches, so responses park in a min-heap until their
/// predecessor has been written. Each payload is followed by the
/// protocol's terminator (`\n` for the line protocol; nothing for
/// self-framed HTTP responses). A close-marked response is the
/// connection's last: the writer flushes it and exits, which closes
/// the socket.
fn writer_loop(
    stream: &TcpStream,
    rx: Receiver<Reply>,
    terminator: &[u8],
    metrics: &ServeMetrics,
) -> io::Result<()> {
    let mut out = BufWriter::new(stream);
    let mut pending: BinaryHeap<Reverse<Reply>> = BinaryHeap::new();
    let mut next = 0u64;
    while let Ok(msg) = rx.recv() {
        pending.push(Reverse(msg));
        // Batch whatever already arrived before paying for a flush.
        while let Ok(more) = rx.try_recv() {
            pending.push(Reverse(more));
        }
        // One write-stage sample per flush cycle (buffer fill + flush).
        // Responses only reach the client at the flush, so each cycle's
        // duration lies inside the latency window of the requests it
        // answers — the stage-sum invariant holds for `write` too.
        let cycle_start = Instant::now();
        let mut wrote = false;
        while pending
            .peek()
            .is_some_and(|Reverse((seq, ..))| *seq == next)
        {
            let Reverse((_, response, close)) = pending.pop().expect("peeked");
            out.write_all(response.as_bytes())?;
            out.write_all(terminator)?;
            next += 1;
            wrote = true;
            if close {
                let result = out.flush();
                metrics.write.record(as_us(cycle_start.elapsed()));
                return result;
            }
        }
        if wrote {
            out.flush()?;
            metrics.write.record(as_us(cycle_start.elapsed()));
        }
    }
    out.flush()
}
