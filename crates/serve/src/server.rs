//! The TCP front end: accept loop, pipelined connections, batch
//! aggregation, worker pool, graceful shutdown.
//!
//! Threading model (all std, shared-nothing where it matters):
//!
//! - an **accept thread** owns the listener and spawns one handler per
//!   connection;
//! - each **connection** runs a reader and a writer. The reader parses
//!   lines and pushes jobs into the shared [`BoundedQueue`] —
//!   clients may pipeline arbitrarily many requests without waiting.
//!   The writer re-sequences responses (workers complete batches out
//!   of order relative to other connections' batches) and writes them
//!   back in request order;
//! - a **worker pool** drains the queue in time/count-windowed batches
//!   ([`BoundedQueue::pop_batch`]) and resolves each batch through
//!   [`Engine::resolve_line_batch`] — responses come back as the
//!   cache's shared pre-serialized lines, so a hit writes without any
//!   formatting work. The workers *are* the shards: each
//!   processes its batch sequentially on its own core with one cache
//!   pass and one private [`websyn_core::MatchScratch`] (the same
//!   shared-nothing, memo-per-shard discipline as
//!   `EntityMatcher::match_batch`, but with shards driven by real
//!   traffic instead of a fixed pre-split batch);
//! - **backpressure**: a full queue rejects the request immediately
//!   with [`crate::proto::ERR_BUSY`] instead of queueing unboundedly —
//!   the client sees the overload in-band, in request order;
//! - **shutdown**: [`ServerHandle::shutdown`] flips a flag, nudges the
//!   accept loop awake, joins every connection (readers poll the flag
//!   on a read timeout), closes the queue — pending requests still
//!   drain — and joins the workers.

use crate::engine::Engine;
use crate::proto::{
    format_stats, CONTROL_STATS, ERR_BUSY, ERR_LINE_TOO_LONG, ERR_SHUTDOWN, ERR_UNKNOWN_CONTROL,
};
use crate::queue::{BoundedQueue, PushError};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning for the serving front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads draining the request queue. Defaults to the
    /// machine's available parallelism.
    pub workers: usize,
    /// Request queue capacity; pushes beyond it are rejected with
    /// `ERR busy` (explicit backpressure, no unbounded growth).
    pub queue_depth: usize,
    /// Maximum queries a worker coalesces into one matcher batch.
    pub batch_max: usize,
    /// How long a worker waits to top up a partial batch. Bounds the
    /// queueing latency a lone request can see.
    pub batch_window: Duration,
    /// Socket read timeout — the shutdown-poll interval for idle
    /// connections, not a client deadline (reads simply retry).
    pub read_timeout: Duration,
    /// Socket write timeout; a client that stops reading for this long
    /// has its connection dropped.
    pub write_timeout: Duration,
    /// Maximum request-line length in bytes. A connection that exceeds
    /// it (e.g. streams data with no newline) gets one `ERR` line and
    /// is dropped — per-connection buffering stays bounded no matter
    /// what the client sends.
    pub max_line_bytes: usize,
    /// Maximum live connections. Accepts beyond the cap are dropped
    /// immediately, so connection count (each costs two threads) stays
    /// bounded even against a client that opens sockets and never
    /// sends a request — traffic the queue bound cannot see.
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get()),
            queue_depth: 1024,
            batch_max: 64,
            batch_window: Duration::from_micros(500),
            read_timeout: Duration::from_millis(25),
            write_timeout: Duration::from_secs(5),
            max_line_bytes: 64 * 1024,
            max_connections: 1024,
        }
    }
}

/// One in-flight request: the raw query line, its per-connection
/// sequence number, and the connection's response channel.
struct Job {
    seq: u64,
    query: String,
    reply: Sender<(u64, Arc<str>)>,
}

/// The serving front end. `start` is the only entry point; the running
/// server is controlled through the returned [`ServerHandle`].
pub struct Server;

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port),
    /// spawns the accept loop and worker pool, and returns immediately.
    ///
    /// # Errors
    /// Returns the bind error if the address is unavailable.
    pub fn start<A: ToSocketAddrs>(
        engine: Arc<Engine>,
        addr: A,
        config: ServeConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let queue = Arc::new(BoundedQueue::new(config.queue_depth));
        let shutdown = Arc::new(AtomicBool::new(false));

        let workers: Vec<JoinHandle<()>> = (0..config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let engine = Arc::clone(&engine);
                std::thread::spawn(move || worker_loop(&engine, &queue, config))
            })
            .collect();

        let accept = {
            let queue = Arc::clone(&queue);
            let engine = Arc::clone(&engine);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                accept_loop(&listener, &engine, &queue, &shutdown, config);
            })
        };

        Ok(ServerHandle {
            addr: local_addr,
            engine,
            queue,
            shutdown,
            accept: Some(accept),
            workers,
        })
    }
}

/// Control of a running server: its address, its engine (for dictionary
/// swaps and stats), and graceful shutdown. Dropping the handle shuts
/// the server down too.
pub struct ServerHandle {
    addr: SocketAddr,
    engine: Arc<Engine>,
    queue: Arc<BoundedQueue<Job>>,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The engine behind the server — swap dictionaries or read cache
    /// stats through this while the server runs.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Gracefully stops the server: no new connections, in-flight
    /// requests drain, every thread is joined. Returns once everything
    /// has stopped.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        if self.accept.is_none() && self.workers.is_empty() {
            return;
        }
        self.shutdown.store(true, Ordering::SeqCst);
        // Close the queue first: already-accepted requests drain and
        // get real responses, while anything arriving during the
        // wind-down is rejected in-band with `ERR shutting-down`
        // instead of being served from a dying process.
        self.queue.close();
        // The accept loop polls a nonblocking listener, so it observes
        // the flag within one poll interval on its own. The self-
        // connect is only a best-effort nudge to wake it a little
        // sooner; shutdown does not depend on it succeeding.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// Accepts connections until shutdown, then joins every handler.
fn accept_loop(
    listener: &TcpListener,
    engine: &Arc<Engine>,
    queue: &Arc<BoundedQueue<Job>>,
    shutdown: &Arc<AtomicBool>,
    config: ServeConfig,
) {
    let mut handlers: Vec<JoinHandle<()>> = Vec::new();
    // Nonblocking accept + flag polling: shutdown never depends on a
    // wake-up connection reaching us (which can fail under fd
    // exhaustion or on wildcard binds — exactly the moments an
    // operator is trying to stop the server).
    if listener.set_nonblocking(true).is_err() {
        return;
    }
    loop {
        if shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => {
                // Accepted sockets inherit nonblocking mode on some
                // platforms; connection io must block (with its own
                // timeouts).
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                stream
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
                continue;
            }
            Err(_) => {
                // Persistent accept errors (fd exhaustion under a
                // connection flood) would otherwise busy-spin this
                // loop at 100% CPU exactly when the server is
                // overloaded — back off briefly instead.
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        handlers.retain(|h| !h.is_finished());
        if handlers.len() >= config.max_connections.max(1) {
            // Shed the connection outright: the client sees an
            // immediate close instead of a server that silently grows
            // a thread per idle socket.
            drop(stream);
            continue;
        }
        let engine = Arc::clone(engine);
        let queue = Arc::clone(queue);
        let shutdown = Arc::clone(shutdown);
        handlers.push(std::thread::spawn(move || {
            let _ = handle_connection(stream, &engine, &queue, &shutdown, config);
        }));
    }
    for handle in handlers {
        let _ = handle.join();
    }
}

/// One worker: drain windowed batches, resolve, reply.
fn worker_loop(engine: &Engine, queue: &BoundedQueue<Job>, config: ServeConfig) {
    let mut batch: Vec<Job> = Vec::with_capacity(config.batch_max);
    while queue.pop_batch(config.batch_max, config.batch_window, &mut batch) {
        let queries: Vec<&str> = batch.iter().map(|job| job.query.as_str()).collect();
        let results = engine.resolve_line_batch(&queries);
        for (job, line) in batch.iter().zip(results) {
            // A send error means the connection died mid-flight; the
            // result is simply dropped. The line was serialized when
            // the cache entry was filled — a hit sends a shared
            // `Arc<str>` without touching `format_spans`.
            let _ = job.reply.send((job.seq, line));
        }
    }
}

/// Serves one connection: reader (scoped thread) feeds the queue,
/// writer (this thread) re-sequences and responds.
fn handle_connection(
    stream: TcpStream,
    engine: &Arc<Engine>,
    queue: &Arc<BoundedQueue<Job>>,
    shutdown: &Arc<AtomicBool>,
    config: ServeConfig,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    let read_half = stream.try_clone()?;
    let (tx, rx) = std::sync::mpsc::channel::<(u64, Arc<str>)>();
    std::thread::scope(|scope| {
        scope.spawn(|| reader_loop(read_half, engine, queue, shutdown, tx, config));
        let result = writer_loop(&stream, rx);
        // If the writer died first (write timeout — the client stopped
        // reading), the reader would otherwise keep parsing and
        // enqueuing work whose results nobody can receive. Shut the
        // socket down so the reader's next read fails and the whole
        // connection is torn down. (On the normal path the reader has
        // already exited and this is a no-op on a closing socket.)
        let _ = stream.shutdown(std::net::Shutdown::Both);
        result
    })
}

/// Parses request lines and enqueues jobs; responds in-band to control
/// lines and backpressure rejects (through the same sequenced channel,
/// so ordering is preserved).
fn reader_loop(
    read_half: TcpStream,
    engine: &Engine,
    queue: &BoundedQueue<Job>,
    shutdown: &AtomicBool,
    reply: Sender<(u64, Arc<str>)>,
    config: ServeConfig,
) {
    let mut reader = BufReader::new(read_half);
    // Lines accumulate as raw bytes: `read_line`'s UTF-8 guard would
    // silently discard a partial read that a timeout cut mid-way
    // through a multi-byte character, corrupting the stream. Bytes are
    // decoded (lossily) only once a line is complete.
    let mut line: Vec<u8> = Vec::new();
    let mut seq = 0u64;
    // Handles one complete (still byte-form) request line; returns
    // false when the connection is dead (writer gone). Invalid UTF-8
    // is decoded lossily — the replacement characters simply fail to
    // match anything downstream.
    let handle = |raw: &[u8], seq: u64| -> bool {
        let decoded = String::from_utf8_lossy(raw);
        let request = decoded.trim_end_matches(['\n', '\r']);
        let response: Option<Arc<str>> = if request.starts_with('#') {
            // Control lines are answered inline, never queued.
            Some(match request {
                CONTROL_STATS => {
                    Arc::from(format_stats(&engine.cache_stats(), engine.swaps()).as_str())
                }
                _ => Arc::from(ERR_UNKNOWN_CONTROL),
            })
        } else {
            match queue.push(Job {
                seq,
                query: request.to_string(),
                reply: reply.clone(),
            }) {
                Ok(()) => None,
                Err(PushError::Full) => Some(Arc::from(ERR_BUSY)),
                Err(PushError::Closed) => Some(Arc::from(ERR_SHUTDOWN)),
            }
        };
        match response {
            Some(response) => reply.send((seq, response)).is_ok(),
            None => true,
        }
    };
    loop {
        // Bound the per-connection buffer: once the (terminated or
        // not) line exceeds the cap, answer once and drop the
        // connection — we cannot resynchronize mid-line. The `take`
        // below guarantees `line` never grows past cap + 1 bytes even
        // against a client streaming data with no newline.
        if line.len() > config.max_line_bytes {
            let _ = reply.send((seq, Arc::from(ERR_LINE_TOO_LONG)));
            break;
        }
        let allowed = (config.max_line_bytes + 1 - line.len()) as u64;
        match (&mut reader).take(allowed).read_until(b'\n', &mut line) {
            // True EOF (`allowed` is never 0 here): the client closed
            // its half. Process a final unterminated line, then stop.
            Ok(0) => {
                if !line.is_empty() {
                    handle(&line, seq);
                }
                break;
            }
            Ok(_) => {
                if line.last() != Some(&b'\n') {
                    // Mid-line: either the cap cut the read (caught at
                    // the top of the loop) or the client hit EOF
                    // without a newline (next read returns Ok(0)).
                    continue;
                }
                if !handle(&line, seq) {
                    break;
                }
                seq += 1;
                line.clear();
                // A client that streams requests back-to-back never
                // hits the read-timeout branch, so shutdown must also
                // be observed here or a busy connection would block
                // ServerHandle::shutdown indefinitely.
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            // Timeout: `line` keeps any partial read; poll the flag
            // and retry.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    // Dropping `reply` here lets the writer exit once the last queued
    // job for this connection has been answered.
}

/// Writes responses in request order: workers may answer out of order
/// across batches, so responses park in a min-heap until their
/// predecessor has been written.
fn writer_loop(stream: &TcpStream, rx: Receiver<(u64, Arc<str>)>) -> io::Result<()> {
    let mut out = BufWriter::new(stream);
    let mut pending: BinaryHeap<Reverse<(u64, Arc<str>)>> = BinaryHeap::new();
    let mut next = 0u64;
    while let Ok(msg) = rx.recv() {
        pending.push(Reverse(msg));
        // Batch whatever already arrived before paying for a flush.
        while let Ok(more) = rx.try_recv() {
            pending.push(Reverse(more));
        }
        let mut wrote = false;
        while pending.peek().is_some_and(|Reverse((seq, _))| *seq == next) {
            let Reverse((_, response)) = pending.pop().expect("peeked");
            out.write_all(response.as_bytes())?;
            out.write_all(b"\n")?;
            next += 1;
            wrote = true;
        }
        if wrote {
            out.flush()?;
        }
    }
    out.flush()
}
