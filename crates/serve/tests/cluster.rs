//! Cluster integration tests: the router + worker-process fleet
//! against real sockets and real child processes.
//!
//! The fleet is driven through the [`Cluster`] library API with
//! `worker_exe` pointed at the `websyn-cluster` binary (Cargo exposes
//! its path to integration tests), so these tests exercise the exact
//! spawn/handshake/supervise path the binaries use — only the router
//! and monitor run inside the test process.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use websyn_common::EntityId;
use websyn_core::{EntityMatcher, FuzzyConfig};
use websyn_serve::cluster::{Cluster, ClusterConfig};
use websyn_serve::http::{percent_encode, read_response, spans_json};

/// The dictionary every test serves: enough surfaces to spread across
/// a 4-worker ring, plus fuzzy matching for misspelled traffic.
fn test_matcher() -> EntityMatcher {
    let mut pairs: Vec<(String, EntityId)> = vec![
        ("indy 4".into(), EntityId::new(0)),
        ("indiana jones 4".into(), EntityId::new(0)),
        ("madagascar 2".into(), EntityId::new(1)),
        ("canon eos 350d".into(), EntityId::new(2)),
        ("digital rebel xt".into(), EntityId::new(2)),
    ];
    for i in 0..40u32 {
        pairs.push((format!("test entity {i}"), EntityId::new(10 + i)));
    }
    EntityMatcher::from_pairs(
        pairs
            .iter()
            .map(|(s, id)| (s.as_str(), *id))
            .collect::<Vec<_>>(),
    )
    .with_fuzzy(FuzzyConfig::default())
}

/// Writes the test dictionary as a TSV artifact for worker processes;
/// the file is unique per test to keep parallel tests apart.
fn dict_file(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "websyn-cluster-test-{}-{tag}.tsv",
        std::process::id()
    ));
    std::fs::write(&path, test_matcher().to_tsv()).expect("write dict");
    path
}

fn start_cluster(tag: &str, workers: usize, replication: usize) -> (Cluster, PathBuf) {
    let dict = dict_file(tag);
    let cluster = Cluster::start(
        "127.0.0.1:0",
        ClusterConfig {
            workers,
            replication,
            dict: Some(dict.to_string_lossy().into_owned()),
            worker_exe: Some(PathBuf::from(env!("CARGO_BIN_EXE_websyn-cluster"))),
            probe_interval: Duration::from_millis(25),
            ..ClusterConfig::default()
        },
    )
    .expect("start cluster");
    (cluster, dict)
}

struct Client {
    conn: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Self {
        let conn = TcpStream::connect(addr).expect("connect router");
        let reader = BufReader::new(conn.try_clone().expect("clone"));
        Self { conn, reader }
    }

    fn get(&mut self, target: &str) -> (u16, String) {
        write!(self.conn, "GET {target} HTTP/1.1\r\n\r\n").expect("send");
        read_response(&mut self.reader).expect("response")
    }

    fn ask(&mut self, query: &str) -> (u16, String) {
        self.get(&format!("/match?q={}", percent_encode(query)))
    }
}

/// A traffic mix touching every worker: exact hits, fuzzy hits,
/// misses, and odd encodings.
fn query_mix() -> Vec<String> {
    let mut queries = Vec::new();
    for i in 0..40u32 {
        queries.push(format!("test entity {i}"));
        queries.push(format!("looking for test entity {i} online"));
    }
    queries.extend(
        [
            "indy 4 near san fran",
            "cheapest cannon eos 350d deals", // fuzzy
            "madagasacr 2 tickets",           // fuzzy transposition
            "nothing matches here",
            "café indy 4", // multi-byte percent-encoding
            "",
        ]
        .map(String::from),
    );
    queries
}

#[test]
fn cluster_responses_match_a_single_engine_oracle() {
    let (cluster, dict) = start_cluster("oracle", 4, 2);
    let oracle = test_matcher();
    let mut client = Client::connect(cluster.addr());
    for query in query_mix() {
        let want = (200, spans_json(&oracle.segment(&query)));
        // Twice: the second answer exercises worker caches through the
        // router without changing the bytes.
        assert_eq!(client.ask(&query), want, "{query:?} uncached");
        assert_eq!(client.ask(&query), want, "{query:?} cached");
    }
    // Router-level request handling: the satellite route() semantics
    // hold through the proxy too.
    let golden = (200, spans_json(&oracle.segment("indy 4")));
    assert_eq!(client.get("/match?verbose=1&q=indy+4"), golden);
    assert_eq!(client.get("/match?q=a&q=b").0, 400, "duplicate q");
    assert_eq!(client.get("/frobnicate").0, 404);
    // Aggregated stats see the whole fleet.
    let (status, stats) = client.get("/stats");
    assert_eq!(status, 200);
    assert!(stats.contains("\"workers\":4"), "{stats}");
    cluster.shutdown();
    let _ = std::fs::remove_file(dict);
}

#[test]
fn killing_a_worker_loses_no_client_requests() {
    let (cluster, dict) = start_cluster("kill", 3, 2);
    let oracle = test_matcher();
    let queries = query_mix();
    let mut client = Client::connect(cluster.addr());
    // Warm-up pass proves the fleet serves before the chaos.
    for query in queries.iter().take(10) {
        assert_eq!(client.ask(query).0, 200, "warm-up {query:?}");
    }

    cluster.kill_worker(1);
    // Every request from the kill to full recovery must succeed with
    // the oracle's exact bytes — the acceptance criterion.
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut served = 0u32;
    'outage: loop {
        for query in &queries {
            let want = (200, spans_json(&oracle.segment(query)));
            assert_eq!(client.ask(query), want, "during outage: {query:?}");
            served += 1;
            if cluster.healthy_workers() == 3 {
                break 'outage;
            }
        }
        assert!(
            Instant::now() < deadline,
            "worker not restarted after {served} requests"
        );
    }
    assert!(cluster.wait_healthy(3, Duration::from_secs(20)));
    assert!(cluster.restarts() >= 1, "monitor must restart the victim");
    assert!(served > 0);
    // And the fleet still answers correctly after recovery.
    for query in queries.iter().take(10) {
        let want = (200, spans_json(&oracle.segment(query)));
        assert_eq!(client.ask(query), want, "after recovery: {query:?}");
    }
    cluster.shutdown();
    let _ = std::fs::remove_file(dict);
}

#[test]
fn rolling_restart_is_invisible_to_in_flight_traffic() {
    let (cluster, dict) = start_cluster("rolling", 3, 2);
    let queries = query_mix();
    let addr = cluster.addr();
    let stop = Arc::new(AtomicBool::new(false));

    // Background clients hammer the router for the whole rolling
    // rebuild; every response must be a 200 with oracle-exact bytes.
    let clients: Vec<_> = (0..3)
        .map(|offset| {
            let stop = Arc::clone(&stop);
            let queries = queries.clone();
            let oracle = test_matcher();
            std::thread::spawn(move || -> Result<u64, String> {
                let mut client = Client::connect(addr);
                let mut served = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    for query in queries.iter().skip(offset).step_by(3) {
                        let want = (200, spans_json(&oracle.segment(query)));
                        let got = client.ask(query);
                        if got != want {
                            return Err(format!(
                                "{query:?}: got {} {:?}",
                                got.0,
                                &got.1[..got.1.len().min(80)]
                            ));
                        }
                        served += 1;
                    }
                }
                Ok(served)
            })
        })
        .collect();

    // Let traffic establish, roll the whole fleet, let traffic settle.
    std::thread::sleep(Duration::from_millis(100));
    let swapped = cluster.rolling_restart().expect("rolling restart");
    assert_eq!(swapped, 3, "every worker swapped");
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::SeqCst);
    let mut total = 0;
    for handle in clients {
        total += handle
            .join()
            .expect("client thread")
            .expect("zero failed requests during the roll");
    }
    assert!(total > 0, "clients actually ran traffic");
    assert_eq!(cluster.healthy_workers(), 3, "fleet fully back");
    cluster.shutdown();
    let _ = std::fs::remove_file(dict);
}

#[test]
fn rolling_restart_onto_a_new_artifact_serves_the_new_dictionary() {
    let (cluster, dict) = start_cluster("artifact", 3, 2);
    let queries = query_mix();
    let addr = cluster.addr();
    let stop = Arc::new(AtomicBool::new(false));

    // The new artifact is a superset of the old: every query in the
    // traffic mix answers byte-identically from either, so in-flight
    // responses stay oracle-exact even while the fleet serves a mix of
    // artifacts mid-roll.
    let new_dict = std::env::temp_dir().join(format!(
        "websyn-cluster-test-{}-artifact-new.tsv",
        std::process::id()
    ));
    let mut tsv = test_matcher().to_tsv();
    tsv.push_str("fresh artifact surface\t500\n");
    std::fs::write(&new_dict, &tsv).expect("write new dict");
    #[allow(deprecated)] // from_tsv: the oracle loads exactly what workers load
    let new_oracle = EntityMatcher::from_tsv(&tsv).expect("parse new dict");

    {
        let mut client = Client::connect(addr);
        assert_eq!(
            client.ask("fresh artifact surface"),
            (200, "{\"spans\":[]}".to_string()),
            "new surface must not resolve before the roll"
        );
    }

    // Background clients hammer the router across the whole roll;
    // every response must be a 200 with oracle-exact bytes.
    let clients: Vec<_> = (0..3)
        .map(|offset| {
            let stop = Arc::clone(&stop);
            let queries = queries.clone();
            let oracle = test_matcher();
            std::thread::spawn(move || -> Result<u64, String> {
                let mut client = Client::connect(addr);
                let mut served = 0u64;
                while !stop.load(Ordering::SeqCst) {
                    for query in queries.iter().skip(offset).step_by(3) {
                        let want = (200, spans_json(&oracle.segment(query)));
                        let got = client.ask(query);
                        if got != want {
                            return Err(format!(
                                "{query:?}: got {} {:?}",
                                got.0,
                                &got.1[..got.1.len().min(80)]
                            ));
                        }
                        served += 1;
                    }
                }
                Ok(served)
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(100));
    let swapped = cluster
        .rolling_restart_with_dict(Some(new_dict.to_string_lossy().into_owned()))
        .expect("rolling restart with dict");
    assert_eq!(swapped, 3, "every worker swapped onto the new artifact");
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, Ordering::SeqCst);
    let mut total = 0;
    for handle in clients {
        total += handle
            .join()
            .expect("client thread")
            .expect("zero failed requests during the artifact roll");
    }
    assert!(total > 0, "clients actually ran traffic");

    // The rolled fleet serves the new artifact's surface set, byte-for
    // byte what a single engine over the new artifact would answer.
    let mut client = Client::connect(addr);
    let want = (
        200,
        spans_json(&new_oracle.segment("fresh artifact surface")),
    );
    assert!(want.1.contains("\"entity\":500"), "oracle sanity");
    assert_eq!(client.ask("fresh artifact surface"), want);
    // Old surfaces still answer identically.
    for query in queries.iter().take(10) {
        let expect = (200, spans_json(&new_oracle.segment(query)));
        assert_eq!(client.ask(query), expect, "after artifact roll: {query:?}");
    }
    cluster.shutdown();
    let _ = std::fs::remove_file(dict);
    let _ = std::fs::remove_file(new_dict);
}
