//! Live-socket integration tests for the serving front end: protocol
//! round trips, pipelined ordering, backpressure, dictionary swap on a
//! running server, and clean shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use websyn_common::EntityId;
use websyn_core::{EntityMatcher, FuzzyConfig};
use websyn_serve::{format_spans, Engine, EngineConfig, ServeConfig, Server, ServerHandle};

fn matcher() -> EntityMatcher {
    EntityMatcher::from_pairs(vec![
        ("indy 4", EntityId::new(0)),
        ("indiana jones 4", EntityId::new(0)),
        ("madagascar 2", EntityId::new(1)),
        ("canon eos 350d", EntityId::new(2)),
    ])
    .with_fuzzy(FuzzyConfig::default())
}

fn start(config: ServeConfig) -> (Arc<Engine>, ServerHandle) {
    let engine = Arc::new(Engine::new(
        Arc::new(matcher()),
        EngineConfig {
            cache_shards: 4,
            cache_capacity: 256,
        },
    ));
    let server =
        Server::start(Arc::clone(&engine), "127.0.0.1:0", config).expect("bind ephemeral port");
    (engine, server)
}

struct Client {
    conn: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &ServerHandle) -> Self {
        let conn = TcpStream::connect(server.addr()).expect("connect");
        let reader = BufReader::new(conn.try_clone().expect("clone"));
        Self { conn, reader }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.conn, "{line}").expect("send");
    }

    fn recv(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("recv");
        assert!(line.ends_with('\n'), "truncated response {line:?}");
        line.trim_end().to_string()
    }

    fn ask(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }
}

#[test]
fn round_trip_matches_direct_segmentation() {
    let (engine, server) = start(ServeConfig::default());
    let m = engine.matcher();
    let mut client = Client::connect(&server);
    for query in [
        "Indy 4 near san fran",
        "cheapest cannon eos 350d deals",
        "watch indiana jones 4 and madagascar 2",
        "no entities at all",
        "",
    ] {
        let expect = format_spans(&m.segment(query));
        // Twice: the second answer comes from the result cache and must
        // be byte-identical.
        assert_eq!(client.ask(query), expect, "{query:?} uncached");
        assert_eq!(client.ask(query), expect, "{query:?} cached");
    }
    assert!(engine.cache_stats().hits >= 4);
    server.shutdown();
}

#[test]
fn pipelined_responses_come_back_in_request_order() {
    let (engine, server) = start(ServeConfig::default());
    let m = engine.matcher();
    let queries: Vec<String> = (0..200)
        .map(|i| match i % 4 {
            0 => format!("indy 4 number {i}"),
            1 => format!("madagascar 2 viewing {i}"),
            2 => format!("canon eos 350d listing {i}"),
            _ => format!("nothing here {i}"),
        })
        .collect();
    let mut client = Client::connect(&server);
    for q in &queries {
        client.send(q);
    }
    for q in &queries {
        assert_eq!(client.recv(), format_spans(&m.segment(q)), "{q:?}");
    }
    server.shutdown();
}

#[test]
fn stats_and_unknown_control_lines() {
    let (_engine, server) = start(ServeConfig::default());
    let mut client = Client::connect(&server);
    assert_eq!(client.ask("indy 4"), "OK\t0,2,0,0,indy 4");
    let stats = client.ask("#stats");
    assert!(stats.starts_with("STATS\thits="), "{stats:?}");
    assert!(stats.contains("\tswaps=0"), "{stats:?}");
    assert_eq!(client.ask("#nope"), "ERR unknown-control");
    // The observability verbs answer with one line each: the
    // tab-folded Prometheus exposition and the slow-trace JSON.
    let metrics = client.ask("#metrics");
    assert!(
        metrics.starts_with("METRICS\t# TYPE websyn_uptime_seconds gauge\t"),
        "{metrics:?}"
    );
    assert!(metrics.contains("websyn_stage_duration_us"), "{metrics:?}");
    let slow = client.ask("#slow");
    assert!(slow.starts_with("SLOW\t{\"threshold_us\":"), "{slow:?}");
    assert!(slow.ends_with("]}"), "{slow:?}");
    server.shutdown();
}

#[test]
#[allow(deprecated)] // swap_matcher: the legacy swap path must keep working
fn dictionary_swap_on_a_live_server() {
    let (engine, server) = start(ServeConfig::default());
    let mut client = Client::connect(&server);
    assert_eq!(client.ask("indy 4"), "OK\t0,2,0,0,indy 4");
    // Rebuild-and-swap while the connection stays open: same surface,
    // different entity — a stale cache entry would be visible.
    engine.swap_matcher(Arc::new(
        EntityMatcher::from_pairs(vec![("indy 4", EntityId::new(9))])
            .with_fuzzy(FuzzyConfig::default()),
    ));
    assert_eq!(client.ask("indy 4"), "OK\t0,2,9,0,indy 4");
    let stats = client.ask("#stats");
    assert!(stats.contains("\tswaps=1"), "{stats:?}");
    server.shutdown();
}

#[test]
fn full_queue_rejects_with_err_busy() {
    // One worker with a long batch window and a tiny queue: flooding
    // the server faster than the window drains must trip ERR busy.
    let (_engine, server) = start(ServeConfig {
        workers: 1,
        queue_depth: 2,
        batch_max: 2,
        batch_window: Duration::from_millis(200),
        ..ServeConfig::default()
    });
    let mut client = Client::connect(&server);
    let n = 64;
    for i in 0..n {
        client.send(&format!("indy 4 burst {i}"));
    }
    let mut ok = 0;
    let mut busy = 0;
    for _ in 0..n {
        let line = client.recv();
        if line == "ERR busy" {
            busy += 1;
        } else {
            assert!(line.starts_with("OK\t"), "{line:?}");
            ok += 1;
        }
    }
    assert_eq!(ok + busy, n);
    assert!(busy > 0, "64 pipelined requests against depth 2 must shed");
    assert!(ok > 0, "accepted requests still complete");
    server.shutdown();
}

#[test]
fn multibyte_utf8_split_across_a_read_timeout_survives() {
    // A stall mid-way through a multi-byte character must not corrupt
    // the stream: the reader buffers raw bytes across timeouts and
    // decodes only complete lines.
    let (engine, server) = start(ServeConfig::default());
    let m = engine.matcher();
    let mut client = Client::connect(&server);
    let query = "café indy 4 tickets";
    let bytes = query.as_bytes();
    let split = query.find('é').unwrap() + 1; // inside the 2-byte 'é'
    client.conn.write_all(&bytes[..split]).expect("send head");
    client.conn.flush().expect("flush");
    // Longer than the 25ms read timeout, so the server's read_until
    // call times out holding half of the character.
    std::thread::sleep(Duration::from_millis(80));
    client.conn.write_all(&bytes[split..]).expect("send tail");
    client.conn.write_all(b"\n").expect("send newline");
    assert_eq!(client.recv(), format_spans(&m.segment(query)));
    // The connection is still healthy afterwards.
    assert_eq!(client.ask("indy 4"), "OK\t0,2,0,0,indy 4");
    server.shutdown();
}

#[test]
fn oversized_lines_are_rejected_and_disconnected() {
    let (_engine, server) = start(ServeConfig {
        max_line_bytes: 64,
        ..ServeConfig::default()
    });
    // A terminated line over the cap: one ERR, then disconnect.
    let mut client = Client::connect(&server);
    let long = format!("{}\n", "x".repeat(200));
    client.conn.write_all(long.as_bytes()).expect("send");
    assert_eq!(client.recv(), "ERR line-too-long");
    let mut rest = String::new();
    let n = client.reader.read_line(&mut rest).expect("eof read");
    assert_eq!(n, 0, "server dropped the connection after the reject");

    // A stream with no newline at all must not buffer unboundedly:
    // same reject, same disconnect, while a well-behaved connection
    // keeps working.
    let mut flood = Client::connect(&server);
    flood
        .conn
        .write_all("y".repeat(4096).as_bytes())
        .expect("send");
    flood.conn.flush().expect("flush");
    assert_eq!(flood.recv(), "ERR line-too-long");
    let mut rest = String::new();
    assert_eq!(flood.reader.read_line(&mut rest).expect("eof read"), 0);
    let mut ok = Client::connect(&server);
    assert_eq!(ok.ask("indy 4"), "OK\t0,2,0,0,indy 4");
    server.shutdown();
}

#[test]
fn connections_beyond_the_cap_are_shed() {
    let (_engine, server) = start(ServeConfig {
        max_connections: 2,
        ..ServeConfig::default()
    });
    let mut a = Client::connect(&server);
    let mut b = Client::connect(&server);
    assert_eq!(a.ask("indy 4"), "OK\t0,2,0,0,indy 4");
    assert_eq!(b.ask("indy 4"), "OK\t0,2,0,0,indy 4");
    // Third connection: accepted by the OS, immediately dropped by the
    // accept loop — the client sees EOF, never a hung socket.
    let shed = TcpStream::connect(server.addr()).expect("tcp connect");
    shed.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
    let mut reader = BufReader::new(shed.try_clone().unwrap());
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read eof");
    assert_eq!(n, 0, "capped connection must be closed, got {line:?}");
    // Existing connections keep working.
    assert_eq!(a.ask("madagascar 2"), "OK\t0,2,1,0,madagascar 2");
    server.shutdown();
}

#[test]
fn shutdown_is_clean_with_connections_open() {
    let (_engine, server) = start(ServeConfig::default());
    let mut client = Client::connect(&server);
    assert_eq!(client.ask("madagascar 2"), "OK\t0,2,1,0,madagascar 2");
    let addr = server.addr();
    // Shut down while the client connection is still open; shutdown()
    // returning proves every thread was joined.
    server.shutdown();
    // The port no longer accepts fresh connections (give the OS a
    // moment to tear the listener down).
    std::thread::sleep(Duration::from_millis(20));
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
    assert!(refused.is_err(), "listener must be gone after shutdown");
}

#[test]
fn shutdown_completes_while_a_client_streams_continuously() {
    // Short write timeout: the flooder never reads its responses, so
    // the final flush may have to time out against full kernel buffers
    // before the connection is torn down.
    let (_engine, server) = start(ServeConfig {
        write_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    });
    let addr = server.addr();
    // A client that never pauses between requests: without the
    // shutdown check on the busy-reader path this would pin the
    // connection thread and block shutdown() forever.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let flooder = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut conn = TcpStream::connect(addr).expect("connect");
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                if writeln!(conn, "indy 4 flood").is_err() {
                    break; // server went away — expected
                }
            }
        })
    };
    std::thread::sleep(Duration::from_millis(50));
    let shut = std::thread::spawn(move || server.shutdown());
    let started = std::time::Instant::now();
    while !shut.is_finished() {
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "shutdown must not hang on a busy connection"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    shut.join().expect("shutdown thread");
    stop.store(true, std::sync::atomic::Ordering::SeqCst);
    flooder.join().expect("flooder thread");
}

#[test]
fn concurrent_clients_each_get_their_own_answers() {
    let (engine, server) = start(ServeConfig::default());
    let m = engine.matcher();
    let addr = server.addr();
    let threads: Vec<_> = (0..6)
        .map(|t| {
            let m = m.clone();
            std::thread::spawn(move || {
                let conn = TcpStream::connect(addr).expect("connect");
                let mut reader = BufReader::new(conn.try_clone().expect("clone"));
                let mut conn = conn;
                for i in 0..50 {
                    let q = format!("client {t} asks indy 4 round {i}");
                    writeln!(conn, "{q}").expect("send");
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("recv");
                    assert_eq!(line.trim_end(), format_spans(&m.segment(&q)), "{q:?}");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
    server.shutdown();
}
