//! Live-socket HTTP/1.1 conformance tests: keep-alive reuse, pipelined
//! re-sequencing, error mapping (400/404/405/431/503), percent-decoding
//! of `q`, graceful shutdown, and a JSON ≡ line-protocol spans
//! equivalence proptest over the shared pre-rendered cache entries.

use proptest::prelude::*;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use websyn_common::EntityId;
use websyn_core::{EntityMatcher, FuzzyConfig};
use websyn_serve::http::{percent_decode, percent_encode, read_response, spans_json};
use websyn_serve::{format_spans, Engine, HttpProtocol, Server, ServerConfig, ServerHandle, Wire};

fn matcher() -> EntityMatcher {
    EntityMatcher::from_pairs(vec![
        ("indy 4", EntityId::new(0)),
        ("indiana jones 4", EntityId::new(0)),
        ("madagascar 2", EntityId::new(1)),
        ("canon eos 350d", EntityId::new(2)),
    ])
    .with_fuzzy(FuzzyConfig::default())
}

fn start(config: ServerConfig) -> (Arc<Engine>, ServerHandle) {
    let engine = Arc::new(
        Engine::builder(Arc::new(matcher()))
            .cache_shards(4)
            .cache_capacity(256)
            .build(),
    );
    let server = Server::start_with(
        Arc::clone(&engine),
        "127.0.0.1:0",
        config,
        Arc::new(HttpProtocol),
    )
    .expect("bind ephemeral port");
    (engine, server)
}

struct Client {
    conn: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(server: &ServerHandle) -> Self {
        let conn = TcpStream::connect(server.addr()).expect("connect");
        let reader = BufReader::new(conn.try_clone().expect("clone"));
        Self { conn, reader }
    }

    fn send(&mut self, request_head: &str) {
        write!(self.conn, "{request_head}").expect("send");
    }

    fn recv(&mut self) -> (u16, String) {
        read_response(&mut self.reader).expect("response")
    }

    fn get(&mut self, target: &str) -> (u16, String) {
        self.send(&format!("GET {target} HTTP/1.1\r\n\r\n"));
        self.recv()
    }

    fn ask(&mut self, query: &str) -> (u16, String) {
        self.get(&format!("/match?q={}", percent_encode(query)))
    }

    /// Reads to EOF; returns how many bytes were left (0 = clean close
    /// with nothing after the last framed response).
    fn expect_eof(mut self) -> usize {
        let mut rest = Vec::new();
        self.reader.read_to_end(&mut rest).expect("eof read");
        rest.len()
    }
}

#[test]
fn keep_alive_connection_answers_many_requests() {
    let (engine, server) = start(ServerConfig::default());
    let m = engine.matcher();
    let mut client = Client::connect(&server);
    for query in [
        "Indy 4 near san fran",
        "cheapest cannon eos 350d deals",
        "watch indiana jones 4 and madagascar 2",
        "no entities at all",
        "",
    ] {
        let expect = (200, spans_json(&m.segment(query)));
        // Twice on one connection: keep-alive reuse, and the second
        // answer comes from the result cache byte-identically.
        assert_eq!(client.ask(query), expect, "{query:?} uncached");
        assert_eq!(client.ask(query), expect, "{query:?} cached");
    }
    assert!(engine.cache_stats().hits >= 4);
    // The same socket still serves the stats endpoint afterwards.
    let (status, stats) = client.get("/stats");
    assert_eq!(status, 200);
    assert!(stats.starts_with("{\"hits\":"), "{stats:?}");
    server.shutdown();
}

#[test]
fn pipelined_gets_come_back_in_request_order() {
    let (engine, server) = start(ServerConfig::default());
    let m = engine.matcher();
    let queries: Vec<String> = (0..200)
        .map(|i| match i % 4 {
            0 => format!("indy 4 number {i}"),
            1 => format!("madagascar 2 viewing {i}"),
            2 => format!("canon eos 350d listing {i}"),
            _ => format!("nothing here {i}"),
        })
        .collect();
    let mut client = Client::connect(&server);
    for q in &queries {
        client.send(&format!(
            "GET /match?q={} HTTP/1.1\r\n\r\n",
            percent_encode(q)
        ));
    }
    for q in &queries {
        assert_eq!(client.recv(), (200, spans_json(&m.segment(q))), "{q:?}");
    }
    server.shutdown();
}

#[test]
fn percent_decoding_matches_direct_segmentation() {
    let (engine, server) = start(ServerConfig::default());
    let m = engine.matcher();
    let mut client = Client::connect(&server);
    // Hand-built encodings: `+`, `%20`, multi-byte UTF-8, and a
    // reserved character that must round-trip as query text.
    for (encoded, decoded) in [
        ("indy+4+near+sf", "indy 4 near sf"),
        ("indy%204", "indy 4"),
        ("caf%C3%A9%20madagascar%202", "café madagascar 2"),
        ("a%26b", "a&b"),
        ("%2Bindy+4", "+indy 4"),
    ] {
        assert_eq!(
            client.get(&format!("/match?q={encoded}")),
            (200, spans_json(&m.segment(decoded))),
            "{encoded}"
        );
    }
    server.shutdown();
}

#[test]
fn malformed_requests_get_400() {
    let (_engine, server) = start(ServerConfig::default());
    // Missing q and a broken escape: client errors, but framing is
    // intact, so the connection keeps serving.
    let mut client = Client::connect(&server);
    assert_eq!(
        client.get("/match"),
        (400, "{\"error\":\"malformed\"}".into())
    );
    assert_eq!(client.get("/match?q=bad%zz").0, 400);
    assert_eq!(client.ask("indy 4").0, 200, "connection survives a 400");

    // A garbage request line loses framing: one 400, then the server
    // closes the connection.
    let mut garbage = Client::connect(&server);
    garbage.send("this is not http\r\n\r\n");
    assert_eq!(garbage.recv().0, 400);
    assert_eq!(garbage.expect_eof(), 0, "connection closed after fatal 400");

    // An announced request body would desynchronize framing: 400+close.
    let mut body = Client::connect(&server);
    body.send("GET /match?q=a HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
    assert_eq!(body.recv().0, 400);
    assert_eq!(body.expect_eof(), 0);
    server.shutdown();
}

#[test]
fn q_is_found_at_any_query_string_position() {
    let (engine, server) = start(ServerConfig::default());
    let m = engine.matcher();
    let mut client = Client::connect(&server);
    let golden = (200, spans_json(&m.segment("indy 4")));
    // `q` need not be the sole or first parameter; unknown parameters
    // are ignored wherever they sit.
    for target in [
        "/match?q=indy+4",
        "/match?verbose=1&q=indy+4",
        "/match?a=b&q=indy+4&c=d",
        "/match?q=indy+4&trace=",
    ] {
        assert_eq!(client.get(target), golden, "{target}");
    }
    server.shutdown();
}

#[test]
fn ambiguous_or_broken_q_is_400_not_a_guess() {
    let (_engine, server) = start(ServerConfig::default());
    let mut client = Client::connect(&server);
    for target in [
        "/match?q=a&q=b",          // duplicate q: ambiguous
        "/match?q",                // bare q, no value
        "/match?verbose=1",        // no q at all
        "/match?qq=indy",          // prefix is not a match
        "/match?verbose=1&q=a%2",  // truncated escape at end
        "/match?q=a%25zz&q=extra", // duplicate beats decodable value
        "/match?a=b&q=%",          // lone %
    ] {
        assert_eq!(
            client.get(target),
            (400, "{\"error\":\"malformed\"}".into()),
            "{target}"
        );
    }
    // None of those cost the connection.
    assert_eq!(client.ask("indy 4").0, 200);
    server.shutdown();
}

#[test]
fn unknown_endpoint_is_404_and_bad_method_405() {
    let (_engine, server) = start(ServerConfig::default());
    let mut client = Client::connect(&server);
    assert_eq!(
        client.get("/frobnicate"),
        (404, "{\"error\":\"not-found\"}".into())
    );
    client.send("DELETE /match?q=a HTTP/1.1\r\n\r\n");
    assert_eq!(
        client.recv(),
        (405, "{\"error\":\"method-not-allowed\"}".into())
    );
    // Neither error costs the connection.
    assert_eq!(client.ask("indy 4").0, 200);
    server.shutdown();
}

#[test]
fn connection_close_and_http10_close_the_socket() {
    let (engine, server) = start(ServerConfig::default());
    let m = engine.matcher();
    let mut client = Client::connect(&server);
    client.send("GET /match?q=indy+4 HTTP/1.1\r\nConnection: close\r\n\r\n");
    assert_eq!(client.recv(), (200, spans_json(&m.segment("indy 4"))));
    assert_eq!(
        client.expect_eof(),
        0,
        "socket closed after Connection: close"
    );

    let mut old = Client::connect(&server);
    old.send("GET /match?q=indy+4 HTTP/1.0\r\n\r\n");
    assert_eq!(old.recv().0, 200);
    assert_eq!(old.expect_eof(), 0, "HTTP/1.0 closes by default");
    server.shutdown();
}

#[test]
fn full_queue_rejects_with_503_busy() {
    // One worker with a long batch window and a tiny queue: flooding
    // the server faster than the window drains must trip 503s.
    let (_engine, server) = start(
        ServerConfig::builder()
            .workers(1)
            .queue_depth(2)
            .batch_max(2)
            .batch_window(Duration::from_millis(200))
            .build(),
    );
    let mut client = Client::connect(&server);
    let n = 64;
    for i in 0..n {
        client.send(&format!("GET /match?q=indy+4+burst+{i} HTTP/1.1\r\n\r\n"));
    }
    let mut ok = 0;
    let mut busy = 0;
    for _ in 0..n {
        let (status, body) = client.recv();
        match status {
            200 => ok += 1,
            503 => {
                assert_eq!(body, "{\"error\":\"busy\"}");
                busy += 1;
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert_eq!(ok + busy, n);
    assert!(busy > 0, "64 pipelined requests against depth 2 must shed");
    assert!(ok > 0, "accepted requests still complete");
    server.shutdown();
}

#[test]
fn oversized_request_lines_get_431_and_disconnect() {
    let (_engine, server) = start(ServerConfig::builder().max_line_bytes(128).build());
    let mut client = Client::connect(&server);
    client.send(&format!(
        "GET /match?q={} HTTP/1.1\r\n\r\n",
        "x".repeat(400)
    ));
    let (status, body) = client.recv();
    assert_eq!(status, 431);
    assert_eq!(body, "{\"error\":\"line-too-long\"}");
    assert_eq!(client.expect_eof(), 0, "connection dropped after 431");
    // A fresh connection still works.
    let mut ok = Client::connect(&server);
    assert_eq!(ok.ask("indy 4").0, 200);
    server.shutdown();
}

#[test]
fn shutdown_is_clean_with_http_connections_open() {
    let (_engine, server) = start(ServerConfig::default());
    let mut client = Client::connect(&server);
    assert_eq!(client.ask("madagascar 2").0, 200);
    let addr = server.addr();
    // Shut down while the keep-alive connection is open; shutdown()
    // returning proves every thread was joined.
    server.shutdown();
    std::thread::sleep(Duration::from_millis(20));
    let refused = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
    assert!(refused.is_err(), "listener must be gone after shutdown");
}

/// Parses the line-protocol rendering into `(start, end, entity,
/// distance, surface)` tuples.
fn line_fields(line: &str) -> Vec<(usize, usize, u64, usize, String)> {
    let rest = line.strip_prefix("OK").expect("OK line");
    rest.split('\t')
        .filter(|s| !s.is_empty())
        .map(|span| {
            let mut parts = span.splitn(5, ',');
            let mut next = || parts.next().expect("span field").to_string();
            (
                next().parse().unwrap(),
                next().parse().unwrap(),
                next().parse().unwrap(),
                next().parse().unwrap(),
                next(),
            )
        })
        .collect()
}

/// Parses the JSON rendering into the same tuples. The serializer's
/// output grammar is fixed (no whitespace, fixed key order), so a
/// split-based parse is exact — and independent of the line parser.
fn json_fields(body: &str) -> Vec<(usize, usize, u64, usize, String)> {
    let inner = body
        .strip_prefix("{\"spans\":[")
        .and_then(|b| b.strip_suffix("]}"))
        .expect("spans body");
    if inner.is_empty() {
        return Vec::new();
    }
    inner
        .split("},{")
        .map(|obj| {
            let obj = obj.trim_start_matches('{').trim_end_matches('}');
            let field = |key: &str| -> String {
                let at = obj.find(key).expect(key) + key.len();
                obj[at..]
                    .chars()
                    .take_while(|&c| c != ',' && c != '"')
                    .collect()
            };
            let surface = {
                let key = "\"surface\":\"";
                let at = obj.find(key).expect("surface") + key.len();
                obj[at..].trim_end_matches('"').to_string()
            };
            (
                field("\"start\":").parse().unwrap(),
                field("\"end\":").parse().unwrap(),
                field("\"entity\":").parse().unwrap(),
                field("\"distance\":").parse().unwrap(),
                surface,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The two wire renderings of one cache entry — the JSON body HTTP
    /// writes and the `OK` line the line protocol writes — must
    /// describe exactly the same spans, for exact hits, fuzzy hits and
    /// misses alike. (Both transports write these entries verbatim —
    /// the socket tests above pin that — so entry-level equivalence is
    /// response-level equivalence.)
    #[test]
    fn json_and_line_renderings_describe_identical_spans(
        mention in 0usize..6,
        noise in "[a-z0-9 ]{0,20}",
    ) {
        // Mix dictionary mentions (including typos the fuzzy path
        // resolves) with arbitrary noise text.
        const MENTIONS: [&str; 6] = [
            "indy 4",
            "indiana jones 4",
            "cannon eos 350d", // fuzzy: distance 1
            "madagasacr 2",    // fuzzy: transposition
            "350d",            // no entity: too short for a surface
            "",
        ];
        let query = format!("{} {}", MENTIONS[mention], noise);
        let engine = Engine::builder(Arc::new(matcher())).build();
        let rendered = engine.resolve_rendered_batch(&[query.as_str()]).remove(0);
        let line = rendered.for_wire(Wire::Line);
        let http = rendered.for_wire(Wire::Http);
        let body = http.split("\r\n\r\n").nth(1).expect("http body");
        prop_assert_eq!(line_fields(&line), json_fields(body), "query {:?}", query);
        // And both agree with a direct matcher call.
        let golden = engine.matcher().segment(&query);
        prop_assert_eq!(&*line, format_spans(&golden).as_str());
        prop_assert_eq!(body, spans_json(&golden).as_str());
    }

    /// `percent_decode` must never panic, and everything
    /// `percent_encode` emits must decode back to the original —
    /// including multi-byte UTF-8, `%`, `+`, and `&`.
    #[test]
    fn percent_decode_round_trips_and_never_panics(s in "\\PC{0,40}") {
        let encoded = percent_encode(&s);
        prop_assert_eq!(percent_decode(&encoded), Some(s.clone()), "{:?}", encoded);
        // Feeding the *raw* string in must not panic either; it either
        // decodes (possibly lossily through stray `+`) or returns None
        // on a broken escape — both map to a well-formed response.
        let _ = percent_decode(&s);
    }

    /// Chopping an encoded string at an arbitrary byte boundary — the
    /// truncated-escape case (`a%2`, `a%`) — must yield `Some` or
    /// `None`, never a panic or an out-of-bounds slice.
    #[test]
    fn truncated_escapes_fail_closed(s in "[a-z%+ ]{0,12}", cut in 0usize..16) {
        let encoded = percent_encode(&s);
        let cut = cut.min(encoded.len());
        let _ = percent_decode(&encoded[..cut]);
    }
}
