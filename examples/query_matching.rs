//! The paper's motivating application, stand-alone: "a query such as
//! 'Indy 4 near San Fran' … produces results for showtimes" — fuzzy
//! matching of free-form Web queries against structured data using a
//! mined synonym dictionary.
//!
//! Builds the dictionary from a mined world, then runs a small "query
//! front-end" loop over a fixed set of incoming queries, reporting
//! entity resolutions exactly as an answering layer would consume them —
//! first with the exact dictionary, then with fuzzy (typo-tolerant)
//! matching enabled and the batch sharded across threads.
//!
//! Run: `cargo run --example query_matching --release`

use websyn::core::FuzzyConfig;
use websyn::prelude::*;
use websyn::synth::queries;
use websyn::text::double_middle_char;

fn main() {
    // Mine a dictionary from a mid-sized movie world.
    let mut world = World::build(&WorldConfig::small_movies(50, 777));
    let events = queries::generate(&mut world, &QueryStreamConfig::small(60_000));
    let engine = engine_for_world(&world);
    let (log, _) = simulate_sessions(&world, &engine, &events, &SessionConfig::default());
    let u_set: Vec<String> = world
        .entities
        .iter()
        .map(|e| e.canonical_norm.clone())
        .collect();
    let search = SearchData::collect(&engine, &u_set, 10);
    let n_pages = world.pages.len();
    let ctx = MiningContext::new(u_set, search, log, n_pages);
    let result = SynonymMiner::new(MinerConfig::with_thresholds(4, 0.1)).mine(&ctx);

    let canonical_only = EntityMatcher::from_pairs(
        ctx.u_set
            .iter()
            .enumerate()
            .map(|(i, u)| (u.clone(), websyn::common::EntityId::from_usize(i))),
    );
    let enriched = EntityMatcher::from_mining(&result, &ctx);
    println!(
        "dictionary: {} canonical surfaces -> {} enriched surfaces \
         ({} dropped as ambiguous)",
        canonical_only.len(),
        enriched.len(),
        enriched.ambiguous_dropped()
    );

    // A batch of incoming "user" queries: mined synonym surfaces
    // embedded in verbose intents, the way real queries arrive.
    let mut incoming: Vec<String> = Vec::new();
    for es in result.per_entity.iter().take(12) {
        if let Some(syn) = es.synonyms.first() {
            incoming.push(format!("{} near san fran", syn.text));
            incoming.push(format!("watch {} online", syn.text));
        }
    }
    incoming.push("completely unrelated recipe query".to_string());

    let mut resolved_canonical = 0;
    let mut resolved_enriched = 0;
    println!("\nincoming queries:");
    for q in &incoming {
        let spans = enriched.segment(q);
        if !canonical_only.segment(q).is_empty() {
            resolved_canonical += 1;
        }
        match spans.first() {
            Some(span) => {
                resolved_enriched += 1;
                println!(
                    "  {:?}\n    -> {:?} (surface {:?})",
                    q,
                    world.entities[span.entity.as_usize()].canonical,
                    span.surface()
                );
            }
            None => println!("  {q:?}\n    -> no entity"),
        }
    }

    println!(
        "\nresolved with canonical-only dictionary: {resolved_canonical}/{}",
        incoming.len()
    );
    println!(
        "resolved with mined dictionary:          {resolved_enriched}/{}",
        incoming.len()
    );
    assert!(
        resolved_enriched >= resolved_canonical,
        "mined dictionary must not resolve fewer queries"
    );

    // The same front end with typos in every mention: exact matching
    // collapses, fuzzy matching (n-gram candidates + edit-distance
    // verification) recovers most of it. `match_batch` shards the
    // batch across threads with byte-identical output.
    let fuzzy = enriched.clone().with_fuzzy(FuzzyConfig::default());
    let misspelled: Vec<String> = incoming.iter().map(|q| double_middle_char(q)).collect();
    let exact_results = enriched.match_batch(&misspelled, 4);
    let fuzzy_results = fuzzy.match_batch(&misspelled, 4);
    let resolved = |results: &[Vec<MatchSpan>]| results.iter().filter(|s| !s.is_empty()).count();

    println!("\nmisspelled front end (one typo per query):");
    println!(
        "  exact dictionary: {}/{}",
        resolved(&exact_results),
        misspelled.len()
    );
    println!(
        "  fuzzy matching:   {}/{}",
        resolved(&fuzzy_results),
        misspelled.len()
    );
    for (q, spans) in misspelled.iter().zip(&fuzzy_results).take(4) {
        match spans.first() {
            Some(span) => println!(
                "  {:?}\n    -> {:?} (surface {:?}, distance {})",
                q,
                world.entities[span.entity.as_usize()].canonical,
                span.surface(),
                span.distance
            ),
            None => println!("  {q:?}\n    -> no entity"),
        }
    }
    assert!(
        resolved(&fuzzy_results) >= resolved(&exact_results),
        "fuzzy matching must not resolve fewer misspelled queries"
    );
    assert_eq!(
        fuzzy.match_batch(&misspelled, 1),
        fuzzy_results,
        "sharded output must equal sequential output"
    );
}
