//! Quickstart: the whole pipeline on a small movie world.
//!
//! Builds a 30-movie world, simulates a query/click log, mines entity
//! synonyms at the paper's thresholds (IPC 4, ICR 0.1), evaluates them
//! against the exact oracle, and prints a few mined expansions.
//!
//! Run: `cargo run --example quickstart --release`

use websyn::prelude::*;
use websyn::synth::queries;

fn main() {
    // 1. World + query stream (the stand-in for the paper's Bing logs).
    let mut world = World::build(&WorldConfig::small_movies(30, 2010));
    let events = queries::generate(&mut world, &QueryStreamConfig::small(40_000));
    println!(
        "world: {} movies, {} pages, {} alias surfaces",
        world.entities.len(),
        world.pages.len(),
        world.aliases.len()
    );

    // 2. Search engine + session simulation → Click Data L.
    let engine = engine_for_world(&world);
    let (log, stats) = simulate_sessions(&world, &engine, &events, &SessionConfig::default());
    println!(
        "log: {} events, {} distinct queries, {} clicks",
        stats.events, stats.distinct_queries, stats.clicks
    );

    // 3. Search Data A: top-10 results for every canonical string.
    let u_set: Vec<String> = world
        .entities
        .iter()
        .map(|e| e.canonical_norm.clone())
        .collect();
    let search = SearchData::collect(&engine, &u_set, 10);
    let n_pages = world.pages.len();
    let ctx = MiningContext::new(u_set, search, log, n_pages);

    // 4. Mine at the paper's operating point.
    let result = SynonymMiner::new(MinerConfig::with_thresholds(4, 0.1)).mine(&ctx);
    let report = evaluate(&result, &ctx, &world);
    println!("\nevaluation: {report}");

    // 5. Show the expansions for the three most popular movies.
    println!("\nmined synonym sets:");
    for es in result.per_entity.iter().take(3) {
        let entity = &world.entities[es.entity.as_usize()];
        println!("  {:?}", entity.canonical);
        for syn in es.synonyms.iter().take(5) {
            println!(
                "    {:<32} ipc={:<3} icr={:.2}",
                format!("{:?}", syn.text),
                syn.ipc,
                syn.icr
            );
        }
        if es.synonyms.len() > 5 {
            println!("    ... and {} more", es.synonyms.len() - 5);
        }
    }

    // 6. The downstream payoff: match a free-form query.
    let matcher = EntityMatcher::from_mining(&result, &ctx);
    let top = &world.entities[0];
    if let Some(syn) = result.per_entity[0].synonyms.first() {
        let query = format!("{} showtimes tonight", syn.text);
        let spans = matcher.segment(&query);
        println!("\nquery {query:?} resolves to:");
        for span in spans {
            println!(
                "  tokens {}..{} = {:?} -> {:?}",
                span.start,
                span.end,
                span.surface(),
                world.entities[span.entity.as_usize()].canonical
            );
        }
        assert!(matcher.lookup(&syn.text).is_some());
    }
    let _ = top;
}
