//! The serving stack end to end: engine + result cache + live
//! dictionary deltas + round trips over both transports.
//!
//! Builds a fuzzy-enabled dictionary, puts it behind
//! `websyn_serve::Engine` (the sharded LRU result cache), replays a
//! small Zipf-ish stream of repeating queries to show the cache
//! absorbing the fuzzy path, applies a live dictionary delta, and
//! finally starts the real TCP server twice — once speaking the line
//! protocol, once speaking HTTP/1.1 — for pipelined round trips over
//! both wire formats against the same engine.
//!
//! Run: `cargo run --example serving --release`

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use websyn::common::EntityId;
use websyn::core::FuzzyConfig;
use websyn::prelude::*;
use websyn::serve::http::{percent_encode, read_response};
use websyn::serve::{HttpProtocol, ServeConfig};

fn main() {
    // --- a fuzzy-enabled dictionary ---------------------------------
    let matcher = Arc::new(
        EntityMatcher::from_pairs(vec![
            (
                "Indiana Jones and the Kingdom of the Crystal Skull",
                EntityId::new(0),
            ),
            ("indy 4", EntityId::new(0)),
            ("madagascar 2", EntityId::new(1)),
            ("canon eos 350d", EntityId::new(2)),
            ("digital rebel xt", EntityId::new(2)),
        ])
        .with_fuzzy(FuzzyConfig::default()),
    );

    // --- the engine: matcher behind the sharded result cache --------
    let engine = Arc::new(
        Engine::builder(Arc::clone(&matcher))
            .cache_shards(4)
            .cache_capacity(256)
            .build(),
    );

    // A Zipf-flavoured micro-log: the head query dominates, misspelled.
    let stream = [
        "cheapest cannon eos 350d deals", // fuzzy: cannon → canon
        "cheapest cannon eos 350d deals",
        "indy 4 near san fran",
        "cheapest cannon eos 350d deals",
        "madagascar 2 showtimes",
        "cheapest cannon eos 350d deals",
        "indy 4 near san fran",
        "cheapest cannon eos 350d deals",
    ];
    println!("== resolving {} queries through the cache ==", stream.len());
    for query in stream {
        let spans = engine.resolve(query);
        let resolved: Vec<String> = spans
            .iter()
            .map(|s| format!("{}@d{}", s.surface(), s.distance))
            .collect();
        println!("  {query:<34} -> [{}]", resolved.join(", "));
    }
    let stats = engine.cache_stats();
    println!(
        "cache: {} hits / {} misses (hit rate {:.0}%) — the repeated fuzzy query verified once\n",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0
    );

    // --- live dictionary delta ---------------------------------------
    // The compiled base stays immutable; small changes apply live as
    // delta segments through the engine's DictHandle — no recompile,
    // no restart, and the result cache invalidates only entries the
    // delta could have touched.
    println!("== live delta: 'indiana jones 4' joins the dictionary ==");
    let (applied, dict) = engine
        .apply_delta_tsv("indiana jones 4\t0\n")
        .expect("well-formed delta");
    let spans = engine.resolve("watch indiana jones 4 online");
    println!(
        "  after delta ({applied} op, {} live segment): 'watch indiana jones 4 online' -> {} span(s), cache entries {}\n",
        dict.segments,
        spans.len(),
        engine.cache_stats().entries,
    );

    // --- the TCP front end: line protocol ----------------------------
    println!("== live TCP round trip (line protocol, pipelined) ==");
    let server = Server::start(Arc::clone(&engine), "127.0.0.1:0", ServeConfig::default())
        .expect("bind ephemeral port");
    let conn = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let mut conn = conn;
    let requests = ["indy 4 tickets", "madagasacr 2", "#stats"];
    for request in requests {
        writeln!(conn, "{request}").expect("send");
    }
    for request in requests {
        let mut line = String::new();
        reader.read_line(&mut line).expect("recv");
        println!("  {request:<22} -> {}", line.trim_end());
    }
    drop(conn);
    drop(reader);
    server.shutdown();

    // --- the same engine over HTTP/1.1 -------------------------------
    // The transport is pluggable: Server::start_with swaps the wire
    // format while the cache, batch aggregator and worker pool stay
    // identical. Cached entries carry both renderings, so a hit on one
    // transport is a hit on the other.
    println!("\n== live HTTP/1.1 round trip (keep-alive, pipelined) ==");
    let server = Server::start_with(
        Arc::clone(&engine),
        "127.0.0.1:0",
        ServeConfig::builder().build(),
        Arc::new(HttpProtocol),
    )
    .expect("bind ephemeral port");
    let conn = TcpStream::connect(server.addr()).expect("connect");
    let mut reader = BufReader::new(conn.try_clone().expect("clone"));
    let mut conn = conn;
    let queries = ["indy 4 tickets", "madagasacr 2"];
    for query in queries {
        write!(
            conn,
            "GET /match?q={} HTTP/1.1\r\n\r\n",
            percent_encode(query)
        )
        .expect("send");
    }
    write!(conn, "GET /stats HTTP/1.1\r\n\r\n").expect("send");
    for query in queries {
        let (status, body) = read_response(&mut reader).expect("recv");
        println!("  GET /match?q={query:<18} -> {status} {body}");
    }
    let (status, body) = read_response(&mut reader).expect("recv");
    println!("  GET /stats{:<21} -> {status} {body}", "");
    drop(conn);
    drop(reader);
    server.shutdown();
    println!("both servers shut down cleanly.");
}
