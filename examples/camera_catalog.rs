//! The paper's D2 scenario: a product-catalog retailer enriching 200
//! camera names with the surfaces shoppers actually type — model tails
//! ("350d"), marketing names ("digital rebel xt") and misspellings —
//! then serving fuzzy product lookups.
//!
//! Demonstrates the tail-entity regime where manually curated sources
//! (the Wikipedia simulation) collapse but log mining keeps working.
//!
//! Run: `cargo run --example camera_catalog --release`

use websyn::baselines::WikiBaseline;
use websyn::prelude::*;
use websyn::synth::queries;
use websyn::synth::AliasSource;

fn main() {
    // A mid-sized camera world keeps the example fast; the full 882
    // catalog runs in the table1 experiment binary.
    let mut world = World::build(&WorldConfig::small_cameras(200, 350));
    let events = queries::generate(&mut world, &QueryStreamConfig::small(120_000));
    let engine = engine_for_world(&world);
    let (log, stats) = simulate_sessions(&world, &engine, &events, &SessionConfig::default());
    eprintln!(
        "D2 (scaled): {} cameras / {} pages / {} events / {} clicks",
        world.entities.len(),
        world.pages.len(),
        stats.events,
        stats.clicks
    );

    let u_set: Vec<String> = world
        .entities
        .iter()
        .map(|e| e.canonical_norm.clone())
        .collect();
    let search = SearchData::collect(&engine, &u_set, 10);
    let n_pages = world.pages.len();
    let ctx = MiningContext::new(u_set, search, log, n_pages);

    let result = SynonymMiner::new(MinerConfig::with_thresholds(4, 0.1)).mine(&ctx);
    let report = evaluate(&result, &ctx, &world);
    println!("mined: {report}");

    // The tail-coverage story: curated redirects vs mined synonyms.
    let wiki = WikiBaseline::for_domain(world.domain()).run(&world, world.seq());
    println!(
        "\ncurated (wiki sim): {}/{} cameras covered ({:.1}%)",
        wiki.hits(),
        wiki.n_entities(),
        wiki.hit_ratio() * 100.0
    );
    println!(
        "log mining (us):    {}/{} cameras covered ({:.1}%)",
        result.hits(),
        ctx.n_entities(),
        result.hits() as f64 / ctx.n_entities() as f64 * 100.0
    );

    // Marketing-name recoveries — the "hopeless for string matching"
    // class.
    println!("\nmarketing-name recoveries:");
    let mut shown = 0;
    'outer: for es in &result.per_entity {
        for syn in &es.synonyms {
            if let Some(entry) = world.truth.lookup(&syn.text) {
                if entry.source == AliasSource::Marketing {
                    let entity = &world.entities[es.entity.as_usize()];
                    println!(
                        "  {:?}  ->  {:?}  (ipc={}, icr={:.2})",
                        syn.text, entity.canonical, syn.ipc, syn.icr
                    );
                    shown += 1;
                    if shown >= 5 {
                        break 'outer;
                    }
                }
            }
        }
    }

    // Fuzzy product lookup over the enriched catalog.
    let matcher = EntityMatcher::from_mining(&result, &ctx);
    println!("\nfuzzy lookups:");
    let mut demos = 0;
    for es in &result.per_entity {
        if let Some(syn) = es.synonyms.first() {
            let query = format!("best price for {}", syn.text);
            let spans = matcher.segment(&query);
            if let Some(span) = spans.first() {
                println!(
                    "  {:?} -> {:?}",
                    query,
                    world.entities[span.entity.as_usize()].canonical
                );
                demos += 1;
                if demos >= 4 {
                    break;
                }
            }
        }
    }
}
