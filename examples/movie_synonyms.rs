//! The paper's D1 scenario end to end: the full 100-movie catalog, a
//! 120k-event log, mining at (IPC 4, ICR 0.1), plus a comparison with
//! every baseline — a one-binary miniature of Figure 2 + Table I.
//!
//! Run: `cargo run --example movie_synonyms --release`

use websyn::baselines::{SubstringBaseline, WalkBaseline, WikiBaseline};
use websyn::prelude::*;
use websyn::synth::queries;

fn main() {
    let mut world = World::build(&WorldConfig::movies_2008());
    let events = queries::generate(&mut world, &QueryStreamConfig::small(120_000));
    let engine = engine_for_world(&world);
    let (log, stats) = simulate_sessions(&world, &engine, &events, &SessionConfig::default());
    eprintln!(
        "D1: {} movies / {} pages / {} events / {} clicks",
        world.entities.len(),
        world.pages.len(),
        stats.events,
        stats.clicks
    );

    let u_set: Vec<String> = world
        .entities
        .iter()
        .map(|e| e.canonical_norm.clone())
        .collect();
    let search = SearchData::collect(&engine, &u_set, 10);
    let n_pages = world.pages.len();
    let ctx = MiningContext::new(u_set, search, log, n_pages);

    // The miner across a β sweep — Figure 2 in miniature.
    println!("beta  precision  weighted  coverage+  synonyms");
    let miner = SynonymMiner::default();
    let scored = miner.score(&ctx);
    for beta in [2u32, 4, 6, 8, 10] {
        let result = websyn::core::miner::select_with(&ctx, &scored, beta, 0.0, miner.config);
        let r = evaluate(&result, &ctx, &world);
        println!(
            "{beta:>4}  {:>9.3}  {:>8.3}  {:>8.0}%  {:>8}",
            r.precision,
            r.weighted_precision,
            r.coverage_increase() * 100.0,
            r.n_synonyms
        );
    }

    // Head-to-head with the baselines — Table I in miniature.
    let us_result = SynonymMiner::new(MinerConfig::with_thresholds(4, 0.1)).mine(&ctx);
    let us = {
        let per_entity = us_result
            .per_entity
            .iter()
            .map(|es| es.synonyms.iter().map(|s| s.text.clone()).collect())
            .collect();
        BaselineOutput::new("Us", per_entity)
    };
    let wiki = WikiBaseline::for_domain(world.domain()).run(&world, world.seq());
    let walk = WalkBaseline::default().run(&ctx.u_set, &ctx.log, &ctx.graph);
    let substring = SubstringBaseline::default().run(&ctx.u_set, &ctx.log);

    println!("\nmethod              orig  hits   hit%   synonyms  expansion");
    for out in [&us, &wiki, &walk, &substring] {
        println!("{}", out.table_row());
    }

    // The marquee example: a nickname with no token overlap.
    println!("\nsample nickname recoveries:");
    let mut shown = 0;
    for es in &us_result.per_entity {
        let entity = &world.entities[es.entity.as_usize()];
        for syn in &es.synonyms {
            let no_overlap = !entity
                .canonical_norm
                .split(' ')
                .any(|tok| syn.text.split(' ').any(|s| s == tok));
            if no_overlap && world.truth.is_true_synonym(&syn.text, es.entity) {
                println!("  {:?}  ->  {:?}", syn.text, entity.canonical);
                shown += 1;
                break;
            }
        }
        if shown >= 5 {
            break;
        }
    }
}
