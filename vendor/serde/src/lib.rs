//! Offline stand-in for the `serde` crate.
//!
//! Nothing in the websyn workspace serializes at runtime yet — types
//! derive `Serialize`/`Deserialize` so a real serializer can be wired
//! in later, and one test asserts the bounds hold. This stub keeps
//! those derives and bounds compiling without registry access: the
//! traits are pure markers, blanket-implemented for every type, and the
//! derives (re-exported from the stub `serde_derive`) expand to
//! nothing. Swapping in crates.io `serde` later is a manifest-only
//! change.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub mod de {
    /// Marker mirroring `serde::de::DeserializeOwned`.
    pub trait DeserializeOwned: Sized {}
    impl<T> DeserializeOwned for T {}
}

pub mod ser {
    pub use super::Serialize;
}

#[cfg(test)]
mod tests {
    #[test]
    fn blanket_impls_cover_arbitrary_types() {
        fn assert_impls<T: crate::Serialize + crate::de::DeserializeOwned>() {}
        struct Local(#[allow(dead_code)] u8);
        assert_impls::<Local>();
        assert_impls::<Vec<String>>();
    }
}
