//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface websyn's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, `criterion_group!`, `criterion_main!` —
//! with a simple measurement loop: warm up briefly, then time batches
//! until a fixed measurement window elapses and report the mean
//! ns/iteration to stdout. No statistics, plots, or baselines.
//!
//! Two additions beyond plain timing support machine-readable perf
//! tracking:
//!
//! - [`Criterion::configure_from_args`] honours the real crate's
//!   `--test` CLI flag (smoke mode: a few-millisecond measurement
//!   window per benchmark, for CI) and ignores the other flags cargo
//!   forwards to `harness = false` bench binaries;
//! - every completed benchmark is recorded as a [`BenchResult`]
//!   retrievable via [`Criterion::results`], so a bench `main` can emit
//!   a JSON perf report next to the human-readable stdout lines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// One completed benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Full benchmark name (`group/function`).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Total iterations measured.
    pub iters: u64,
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies a parameterized benchmark, e.g. `from_query/6`.
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            full: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            full: s.to_string(),
        }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the closure.
pub struct Bencher<'a> {
    measurement: Duration,
    result_ns: &'a mut f64,
    iters: &'a mut u64,
}

impl Bencher<'_> {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one call, also gives a cost estimate for batching.
        let warm = Instant::now();
        black_box(f());
        let once = warm.elapsed().max(Duration::from_nanos(1));

        let batch =
            (Duration::from_millis(2).as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.measurement {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += start.elapsed();
            iters += batch;
        }
        *self.result_ns = total.as_nanos() as f64 / iters as f64;
        *self.iters = iters;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Kept for API compatibility; the stub's measurement window is
    /// time-based, so the requested sample count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.full);
        self.criterion.run_one(&full, |b| f(b));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.full);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

/// The benchmark driver.
pub struct Criterion {
    measurement: Duration,
    results: Vec<BenchResult>,
    smoke: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep CI-friendly: ~100ms of measurement per benchmark.
        Self {
            measurement: Duration::from_millis(100),
            results: Vec::new(),
            smoke: false,
        }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Applies the process CLI arguments the way the real crate's
    /// harness does for the subset this stub understands: `--test`
    /// switches to smoke mode (run every benchmark, but only for a
    /// ~2ms window each); everything else cargo passes to a bench
    /// binary (`--bench`, filter strings…) is accepted and ignored.
    pub fn configure_from_args(mut self) -> Self {
        if std::env::args().skip(1).any(|a| a == "--test") {
            self.smoke = true;
            self.measurement = Duration::from_millis(2);
        }
        self
    }

    /// Whether `--test` smoke mode is active.
    pub fn is_smoke(&self) -> bool {
        self.smoke
    }

    /// Every benchmark recorded so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, |b| f(b));
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, full_name: &str, mut f: F) {
        let mut ns = 0.0f64;
        let mut iters = 0u64;
        let mut bencher = Bencher {
            measurement: self.measurement,
            result_ns: &mut ns,
            iters: &mut iters,
        };
        f(&mut bencher);
        println!("{full_name:<48} {:>12.1} ns/iter  ({iters} iters)", ns);
        self.results.push(BenchResult {
            name: full_name.to_string(),
            ns_per_iter: ns,
            iters,
        });
    }

    /// Called by `criterion_main!` after all groups run.
    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $($group(&mut c);)+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn times_a_trivial_closure() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("param", 3), &3usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        let results = c.results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].name, "g/noop");
        assert_eq!(results[1].name, "g/param/3");
        for r in results {
            assert!(r.ns_per_iter > 0.0);
            assert!(r.iters > 0);
        }
    }
}
