//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset websyn's property tests use: numeric range
//! strategies, tuple strategies, `collection::vec`, the [`proptest!`]
//! macro with an optional `#![proptest_config(..)]` header, and the
//! `prop_assert!`/`prop_assert_eq!` assertions.
//!
//! Unlike real proptest there is no shrinking: each test runs a fixed
//! number of cases drawn from a per-test deterministic stream (seeded
//! by the test's name), so failures reproduce exactly across runs.

/// A source of test-case randomness (splitmix64 stream).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream keyed by the test name: deterministic across runs.
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in label.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How many cases [`proptest!`] runs per test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

pub mod strategy {
    use super::TestRng;

    /// A recipe for generating values of type `Value`.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// String strategies from a regex subset, mirroring proptest's
    /// `impl Strategy for &str`. Supported: literal characters, `[a-z0-9_]`
    /// style classes (ranges and singletons), and the quantifiers `{n}`,
    /// `{lo,hi}`, `?`, `*`, `+` (`*`/`+` capped at 8 repetitions).
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Parse one atom: a character class or a literal.
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"));
                let class = &chars[i + 1..close];
                i = close + 1;
                let mut set = Vec::new();
                let mut j = 0;
                while j < class.len() {
                    if j + 2 < class.len() && class[j + 1] == '-' {
                        let (lo, hi) = (class[j] as u32, class[j + 2] as u32);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(class[j]);
                        j += 1;
                    }
                }
                set
            } else {
                let c = if chars[i] == '\\' && i + 1 < chars.len() {
                    i += 1;
                    chars[i]
                } else {
                    chars[i]
                };
                i += 1;
                vec![c]
            };
            assert!(!alphabet.is_empty(), "empty class in pattern {pattern:?}");

            // Parse an optional quantifier.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("bad quantifier"),
                        b.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n: usize = body.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else if i < chars.len() && chars[i] == '?' {
                i += 1;
                (0, 1)
            } else if i < chars.len() && chars[i] == '*' {
                i += 1;
                (0, 8)
            } else if i < chars.len() && chars[i] == '+' {
                i += 1;
                (1, 8)
            } else {
                (1, 1)
            };
            assert!(lo <= hi, "bad quantifier in pattern {pattern:?}");

            let count = lo + (rng.next_u64() as usize) % (hi - lo + 1);
            for _ in 0..count {
                out.push(alphabet[(rng.next_u64() as usize) % alphabet.len()]);
            }
        }
        out
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                    self.start.wrapping_add((wide % span) as $t)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
                    lo.wrapping_add((wide % span) as $t)
                }
            }
        )*};
    }
    impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_strategy_float_range {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    // Occasionally emit the endpoints exactly so
                    // inclusive bounds are actually exercised.
                    match rng.next_u64() % 64 {
                        0 => lo,
                        1 => hi,
                        _ => lo + (rng.next_f64() as $t) * (hi - lo),
                    }
                }
            }
        )*};
    }
    impl_strategy_float_range!(f32, f64);

    macro_rules! impl_strategy_tuple {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_strategy_tuple!(A: 0);
    impl_strategy_tuple!(A: 0, B: 1);
    impl_strategy_tuple!(A: 0, B: 1, C: 2);
    impl_strategy_tuple!(A: 0, B: 1, C: 2, D: 3);

    /// Strategy wrapping a constant value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// A `Vec` strategy with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies, running each body for `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                // One plain block per case; prop_assert! panics with the
                // case number attached via this closure-free scheme.
                let __case: u32 = __case;
                { let _ = __case; $body }
            }
        }
    )*};
}

/// Like `assert!`, for use inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Like `assert_eq!`, for use inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Like `assert_ne!`, for use inside [`proptest!`] bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in 0.0f64..=1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_size(v in collection::vec((0..5usize, 1u8..4), 1..40)) {
            prop_assert!(!v.is_empty() && v.len() < 40);
            for &(a, b) in &v {
                prop_assert!(a < 5);
                prop_assert!((1..4).contains(&b));
            }
        }
    }
}
