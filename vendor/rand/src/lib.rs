//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this crate vendors
//! the small slice of the `rand` 0.8 API that the websyn workspace
//! actually uses: [`SeedableRng::seed_from_u64`], [`rngs::SmallRng`],
//! the [`Rng`] extension methods `gen`, `gen_bool`, `gen_range`, and
//! [`seq::SliceRandom`]'s `choose`/`shuffle`.
//!
//! The generator is xoshiro256++ seeded through splitmix64 — fully
//! deterministic for a given seed, which is the property the workspace
//! relies on (see `websyn_common::SeedSequence`). The streams are *not*
//! bit-compatible with crates.io `rand`; nothing in the workspace
//! depends on that.

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// splitmix64 finalizer, used both to expand seeds and as a mixer.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the 64-bit seed into 256 bits of state with
            // splitmix64, as recommended by the xoshiro authors.
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (u128::sample(rng) % span) as $t;
                self.start.wrapping_add(offset)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type.
                    return u128::sample(rng) as $t;
                }
                let offset = (u128::sample(rng) % span) as $t;
                lo.wrapping_add(offset)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t>::sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience extension methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions: random element choice and Fisher–Yates shuffle
    /// (mirrors `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        type Item;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2..=4usize);
            assert!((2..=4).contains(&y));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = SmallRng::seed_from_u64(11);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
