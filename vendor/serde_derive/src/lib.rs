//! Offline stand-in for `serde_derive`.
//!
//! The stub `serde` crate blanket-implements its `Serialize` /
//! `Deserialize` traits for every type, so the derives here only need
//! to exist for `#[derive(serde::Serialize)]` attributes to resolve —
//! they expand to nothing.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
