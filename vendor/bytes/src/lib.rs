//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset of the `bytes` 1.x API used by the websyn
//! click-log codec: [`BytesMut`] as a growable write buffer with
//! little-endian `put_*` methods, [`Bytes`] as a cheaply cloneable
//! shared read buffer, and the [`Buf`]/[`BufMut`] traits over them.
//! Reading from [`Bytes`] advances an offset into shared storage, so
//! consuming a buffer never copies.

use std::ops::RangeBounds;
use std::sync::Arc;

/// Read-side of a byte buffer: a cursor over remaining bytes.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dest: &mut [u8]) {
        assert!(
            self.remaining() >= dest.len(),
            "copy_to_slice: not enough bytes ({} < {})",
            self.remaining(),
            dest.len()
        );
        dest.copy_from_slice(&self.chunk()[..dest.len()]);
        self.advance(dest.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

/// Write-side of a byte buffer.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A cheaply cloneable, immutable, shared byte buffer.
#[derive(Debug, Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn copy_from_slice(src: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(src);
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// A sub-view sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of range"
        );
        Self {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v);
        let end = data.len();
        Self {
            data,
            start: 0,
            end,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of slice");
        *self = &self[cnt..];
    }
}

/// A growable, unique byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    read: usize,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
            read: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.read
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        let data: Arc<[u8]> = Arc::from(self.data);
        let end = data.len();
        Bytes {
            data,
            start: self.read,
            end,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.read..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of BytesMut");
        self.read += cnt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_freeze_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_u32_le(0xdead_beef);
        buf.put_u16_le(7);
        buf.put_slice(b"abc");
        let mut bytes = buf.freeze();
        assert_eq!(bytes.len(), 9);
        assert_eq!(bytes.get_u32_le(), 0xdead_beef);
        assert_eq!(bytes.get_u16_le(), 7);
        let mut rest = [0u8; 3];
        bytes.copy_to_slice(&mut rest);
        assert_eq!(&rest, b"abc");
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slice_shares_storage_and_bounds() {
        let bytes = Bytes::copy_from_slice(b"0123456789");
        let mid = bytes.slice(2..6);
        assert_eq!(mid.as_slice(), b"2345");
        let nested = mid.slice(1..3);
        assert_eq!(nested.as_slice(), b"34");
        assert_eq!(bytes.len(), 10, "parent view unchanged");
    }

    #[test]
    #[should_panic(expected = "copy_to_slice")]
    fn reading_past_end_panics() {
        let mut bytes = Bytes::copy_from_slice(b"ab");
        let _ = bytes.get_u32_le();
    }
}
