//! Serving-cache correctness: cached and uncached segmentation must be
//! byte-identical — on random dictionaries, random (typo-bearing)
//! queries, tiny caches that evict constantly, and across
//! rebuild-and-swap dictionary replacements that invalidate the cache.
//! Plus the LRU eviction-order contract on the public cache API.

use proptest::prelude::*;
use std::sync::Arc;
use websyn::common::EntityId;
use websyn::core::{EntityMatcher, FuzzyConfig, MatchSpan};
use websyn::serve::{Engine, EngineConfig, ShardedCache};

/// A span projected to plain data for cross-result comparison.
type FlatSpan = (usize, usize, String, EntityId, usize);

fn flatten(spans: &[MatchSpan]) -> Vec<FlatSpan> {
    spans
        .iter()
        .map(|s| {
            (
                s.start,
                s.end,
                s.surface().to_string(),
                s.entity,
                s.distance,
            )
        })
        .collect()
}

/// Applies one deterministic character edit to `s`, driven by `seed`.
fn mutate(s: &str, seed: u64) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return s.to_string();
    }
    let pos = (seed / 4) as usize % chars.len();
    let letter = char::from(b'a' + (seed / 64 % 26) as u8);
    let mut out = chars.clone();
    match seed % 4 {
        0 => out[pos] = letter,
        1 => {
            out.remove(pos);
        }
        2 => out.insert(pos, letter),
        _ => {
            if pos + 1 < out.len() {
                out.swap(pos, pos + 1);
            } else {
                out[pos] = letter;
            }
        }
    }
    out.into_iter().collect()
}

/// Builds a query stream from the dictionary: surfaces verbatim,
/// surfaces with one typo, and noise — with heavy repetition (the
/// selector is taken modulo a small range) so the cache actually hits.
fn compose_queries(
    surfaces: &[(String, EntityId)],
    segments: &[(usize, u64)],
    repetition: usize,
) -> Vec<String> {
    segments
        .iter()
        .map(|&(selector, seed)| {
            let surface = &surfaces[selector % repetition.max(1) % surfaces.len()].0;
            match seed % 4 {
                0 | 3 => surface.clone(),
                1 => mutate(surface, seed / 4),
                _ => format!("{surface} noise{}", seed % 13),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cached results are byte-identical to uncached segmentation, on a
    /// cache small enough to evict constantly mid-run.
    #[test]
    fn cached_segmentation_is_byte_identical(
        pairs in collection::vec(("[a-z]{3,9}( [a-z0-9]{2,6}){0,2}", 0u32..6), 2..12),
        segments in collection::vec((0usize..64, 0u64..1_000_000_000), 8..40),
    ) {
        let pairs: Vec<(String, EntityId)> = pairs
            .into_iter()
            .map(|(s, e)| (s, EntityId::new(e)))
            .collect();
        let matcher = Arc::new(
            EntityMatcher::from_pairs(pairs.clone()).with_fuzzy(FuzzyConfig::default()),
        );
        let engine = Engine::new(Arc::clone(&matcher), EngineConfig {
            cache_shards: 2,
            cache_capacity: 4, // tiny: eviction pressure throughout
        });
        let queries = compose_queries(&pairs, &segments, 6);
        for query in &queries {
            // First resolution may fill, second must hit (or have been
            // evicted and refill) — both must equal direct segmentation.
            let cold = engine.resolve(query);
            let warm = engine.resolve(query);
            prop_assert_eq!(flatten(&cold), flatten(&matcher.segment(query)), "{}", query);
            prop_assert_eq!(flatten(&warm), flatten(&cold), "{}", query);
        }
        let stats = engine.cache_stats();
        prop_assert_eq!(stats.hits + stats.misses, 2 * queries.len() as u64);
    }

    /// An `Arc<CompiledDict>` swap invalidates the cache: every
    /// resolution after `swap_matcher` reflects the new dictionary,
    /// never a stale cached span from the old one.
    #[test]
    #[allow(deprecated)] // swap_matcher: the legacy swap path must keep working
    fn swap_invalidates_cached_results(
        pairs in collection::vec(("[a-z]{3,9}( [a-z0-9]{2,6}){0,2}", 0u32..6), 2..10),
        segments in collection::vec((0usize..64, 0u64..1_000_000_000), 4..20),
    ) {
        let pairs: Vec<(String, EntityId)> = pairs
            .into_iter()
            .map(|(s, e)| (s, EntityId::new(e)))
            .collect();
        let old = Arc::new(
            EntityMatcher::from_pairs(pairs.clone()).with_fuzzy(FuzzyConfig::default()),
        );
        // The new dictionary remaps every surface to a shifted entity
        // id, so any stale cache entry is observable.
        let shifted: Vec<(String, EntityId)> = pairs
            .iter()
            .map(|(s, e)| (s.clone(), EntityId::new(e.raw() + 100)))
            .collect();
        let new = Arc::new(
            EntityMatcher::from_pairs(shifted).with_fuzzy(FuzzyConfig::default()),
        );
        let engine = Engine::new(Arc::clone(&old), EngineConfig {
            cache_shards: 2,
            cache_capacity: 64,
        });
        let queries = compose_queries(&pairs, &segments, 4);
        // Warm the cache against the old dictionary.
        for query in &queries {
            let spans = engine.resolve(query);
            prop_assert_eq!(flatten(&spans), flatten(&old.segment(query)), "{}", query);
        }
        prop_assert!(Arc::ptr_eq(&engine.matcher().shared_dict(), &old.shared_dict()));
        engine.swap_matcher(Arc::clone(&new));
        prop_assert!(Arc::ptr_eq(&engine.matcher().shared_dict(), &new.shared_dict()));
        // Every cached answer must now come from the new dictionary.
        for query in &queries {
            let cold = engine.resolve(query);
            let warm = engine.resolve(query);
            prop_assert_eq!(flatten(&cold), flatten(&new.segment(query)), "{}", query);
            prop_assert_eq!(flatten(&warm), flatten(&cold), "{}", query);
        }
        prop_assert_eq!(engine.swaps(), 1);
    }
}

#[test]
fn eviction_order_is_lru_with_get_refresh() {
    // Single shard so recency order is fully observable through the
    // public API.
    let cache: ShardedCache<u32> = ShardedCache::new(1, 3);
    let generation = cache.generation();
    assert!(cache.insert_at(generation, "alpha", 1));
    assert!(cache.insert_at(generation, "beta", 2));
    assert!(cache.insert_at(generation, "gamma", 3));
    // Refresh "alpha": recency is now alpha > gamma > beta.
    assert_eq!(cache.get("alpha"), Some(1));
    assert!(cache.insert_at(generation, "delta", 4));
    assert_eq!(cache.get("beta"), None, "LRU entry evicted first");
    assert_eq!(cache.get("alpha"), Some(1));
    assert_eq!(cache.get("gamma"), Some(3));
    assert_eq!(cache.get("delta"), Some(4));
    // Two more inserts walk the rest of the recency order (beta is
    // gone; the touched entries above set order delta > gamma > alpha
    // by recency of access... evictions follow least-recent first).
    assert!(cache.insert_at(generation, "epsilon", 5));
    assert_eq!(cache.get("alpha"), None, "next least-recent evicted");
    let stats = cache.stats();
    assert_eq!(stats.evictions, 2);
    assert_eq!(stats.entries, 3);
}
