//! Segmented ≡ monolithic: a base dictionary plus any chain of
//! committed delta segments must resolve **byte-identically** to one
//! monolithic recompile of the merged surface set.
//!
//! The model under test is `DictHandle` (PR 10's dictionary-lifecycle
//! API): an immutable base, live deltas (upserts re-pointing or adding
//! surfaces, tombstones removing them), a collapsed overlay consulted
//! in lock-step with the base, footprint-gated window-cache promotion
//! across commits, and compaction folding the chain back into a base.
//! None of that machinery may be visible in a span: for every commit
//! prefix, `segment`, `match_batch` and `lookup_fuzzy` against the
//! segmented matcher must equal the same calls against
//! `EntityMatcher::from_pairs` over an independently maintained merged
//! map — with the shared window cache attached and without, warm and
//! cold, and across a final compaction.
//!
//! A separate hammer test drives commits and compactions from a writer
//! thread while reader threads resolve on epoch-pinned snapshots,
//! checking each snapshot against a monolithic recompile of its own
//! serialized artifact.

use proptest::prelude::*;
use std::sync::Arc;
use websyn::common::{EntityId, FxHashMap, FxHashSet};
use websyn::core::{DictDelta, DictHandle, EntityMatcher, FuzzyConfig, MatchSpan, WindowCache};
use websyn::text::normalize;

/// A span projected to plain data: segmented and monolithic matchers
/// intern surfaces into different id spaces, so spans compare on
/// (start, end, surface string, entity, distance).
type FlatSpan = (usize, usize, String, EntityId, usize);

fn flatten(spans: &[MatchSpan]) -> Vec<FlatSpan> {
    spans
        .iter()
        .map(|s| {
            (
                s.start,
                s.end,
                s.surface().to_string(),
                s.entity,
                s.distance,
            )
        })
        .collect()
}

/// Replicates `EntityMatcher::from_pairs` admission (normalize, ban
/// ambiguous surfaces) into a plain map — the starting point of the
/// independently maintained merged model.
fn base_model(pairs: &[(String, EntityId)]) -> FxHashMap<String, EntityId> {
    let mut surfaces: FxHashMap<String, EntityId> = FxHashMap::default();
    let mut banned: FxHashSet<String> = FxHashSet::default();
    for (raw, entity) in pairs {
        let surface = normalize(raw);
        if surface.is_empty() || banned.contains(&surface) {
            continue;
        }
        match surfaces.get(&surface) {
            None => {
                surfaces.insert(surface, *entity);
            }
            Some(&existing) if existing == *entity => {}
            Some(_) => {
                surfaces.remove(&surface);
                banned.insert(surface);
            }
        }
    }
    surfaces
}

/// One generated delta op. `sel` picks a base surface for the
/// re-point/tombstone kinds; `fresh` is a new surface for the others.
type DeltaOp = (usize, u32, String, u32);

/// Applies generated ops to both the `DictDelta` under test and the
/// independent merged model, in the same order.
fn build_delta(
    ops: &[DeltaOp],
    base_surfaces: &[String],
    model: &mut FxHashMap<String, EntityId>,
) -> DictDelta {
    let mut delta = DictDelta::new();
    for (sel, kind, fresh, entity) in ops {
        let entity = EntityId::new(*entity);
        let existing =
            (!base_surfaces.is_empty()).then(|| &base_surfaces[sel % base_surfaces.len()]);
        match (kind % 4, existing) {
            (0, Some(s)) => {
                delta.upsert(s, entity);
                model.insert(s.clone(), entity);
            }
            (1, Some(s)) => {
                delta.tombstone(s);
                model.remove(s);
            }
            (2, _) | (0, None) => {
                let s = normalize(fresh);
                if !s.is_empty() {
                    delta.upsert(&s, entity);
                    model.insert(s, entity);
                }
            }
            _ => {
                let s = normalize(fresh);
                if !s.is_empty() {
                    delta.tombstone(&s);
                    model.remove(&s);
                }
            }
        }
    }
    delta
}

/// One deterministic character edit (substitution, deletion,
/// insertion, transposition) driven by `seed`.
fn mutate(s: &str, seed: u64) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return s.to_string();
    }
    let pos = (seed / 4) as usize % chars.len();
    let letter = char::from(b'a' + (seed / 64 % 26) as u8);
    let mut out = chars.clone();
    match seed % 4 {
        0 => out[pos] = letter,
        1 => {
            out.remove(pos);
        }
        2 => out.insert(pos, letter),
        _ => {
            if pos + 1 < out.len() {
                out.swap(pos, pos + 1);
            } else {
                out[pos] = letter;
            }
        }
    }
    out.into_iter().collect()
}

/// Builds a query over the full surface universe (base and delta):
/// verbatim surfaces, typo'd surfaces, and noise words.
fn compose_query(surfaces: &[String], segments: &[(usize, u64)]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for &(selector, seed) in segments {
        if surfaces.is_empty() {
            parts.push(format!("noise{}", seed % 97));
            continue;
        }
        let surface = &surfaces[selector % surfaces.len()];
        match seed % 3 {
            0 => parts.push(surface.clone()),
            1 => parts.push(mutate(surface, seed / 3)),
            _ => parts.push(format!("noise{}", seed % 97)),
        }
    }
    parts.join(" ")
}

/// The monolithic oracle for the current merged model.
fn oracle(model: &FxHashMap<String, EntityId>, config: &FuzzyConfig) -> EntityMatcher {
    EntityMatcher::from_pairs(model.iter().map(|(s, &e)| (s.clone(), e))).with_fuzzy(config.clone())
}

/// Drives a full commit-by-commit equivalence run for one config:
/// after every commit, segmented (cached and uncached) must equal the
/// monolithic oracle on every query; then compaction must change
/// nothing.
#[allow(clippy::too_many_arguments)]
fn check_equivalence(
    pairs: Vec<(String, EntityId)>,
    deltas: Vec<Vec<DeltaOp>>,
    segments: Vec<(usize, u64)>,
    config: FuzzyConfig,
) {
    let mut model = base_model(&pairs);
    let base_surfaces: Vec<String> = {
        let mut v: Vec<String> = model.keys().cloned().collect();
        v.sort_unstable();
        v
    };
    let base = EntityMatcher::from_pairs(pairs).with_fuzzy(config.clone());
    // Two handles over the same lifecycle: one with the shared
    // cross-batch window cache (exercising the generation ladder and
    // footprint promotion across commits), one without.
    let cache = Arc::new(WindowCache::new(256));
    let cached_handle = DictHandle::new(base.clone().with_shared_window_cache(Arc::clone(&cache)));
    let plain_handle = DictHandle::new(base);
    cached_handle.set_auto_compact(0);
    plain_handle.set_auto_compact(0);

    let mut universe = base_surfaces.clone();
    for ops in &deltas {
        for (_, kind, fresh, _) in ops {
            if kind % 4 >= 2 {
                let s = normalize(fresh);
                if !s.is_empty() {
                    universe.push(s);
                }
            }
        }
    }
    let queries: Vec<String> = (0..4)
        .map(|i| {
            let shifted: Vec<(usize, u64)> = segments
                .iter()
                .map(|&(sel, seed)| (sel + i, seed + i as u64))
                .collect();
            compose_query(&universe, &shifted)
        })
        .collect();

    let check = |label: &str, model: &FxHashMap<String, EntityId>| {
        let want_matcher = oracle(model, &config);
        let cached = cached_handle.matcher();
        let plain = plain_handle.matcher();
        assert_eq!(cached.len(), want_matcher.len(), "len {}", label);
        for q in &queries {
            let want = flatten(&want_matcher.segment(q));
            assert_eq!(
                &flatten(&plain.segment(q)),
                &want,
                "plain {} {:?}",
                label,
                q
            );
            // Two passes on the cached matcher: cold (footprint
            // promotion / re-resolution) then warm (exact-generation
            // hits).
            assert_eq!(
                &flatten(&cached.segment(q)),
                &want,
                "cached {} {:?}",
                label,
                q
            );
            assert_eq!(
                &flatten(&cached.segment(q)),
                &want,
                "warm {} {:?}",
                label,
                q
            );
            // Whole-query fuzzy lookup agrees (surface/entity/distance).
            let got = cached
                .lookup_fuzzy(q)
                .map(|h| (h.surface().to_string(), h.entity, h.distance));
            let wanted = want_matcher
                .lookup_fuzzy(q)
                .map(|h| (h.surface().to_string(), h.entity, h.distance));
            assert_eq!(got, wanted, "lookup_fuzzy {} {:?}", label, q);
        }
        // The sharded batch path agrees too.
        let want_batch: Vec<Vec<FlatSpan>> = want_matcher
            .match_batch(&queries, 3)
            .iter()
            .map(|s| flatten(s))
            .collect();
        let got_batch: Vec<Vec<FlatSpan>> = cached
            .match_batch(&queries, 3)
            .iter()
            .map(|s| flatten(s))
            .collect();
        assert_eq!(got_batch, want_batch, "match_batch {}", label);
    };

    check("epoch 0", &model);
    for (k, ops) in deltas.iter().enumerate() {
        let delta = build_delta(ops, &base_surfaces, &mut model);
        cached_handle.apply(delta.clone());
        plain_handle.apply(delta);
        check(&format!("commit {}", k + 1), &model);
    }
    // Compaction folds the chain into a fresh base without changing a
    // single span.
    cached_handle.compact();
    plain_handle.compact();
    check("compacted", &model);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Base + delta chain ≡ monolithic recompile of the merged TSV,
    /// on the default (token-signature) chain: per commit, per query,
    /// segment + match_batch + lookup_fuzzy, window cache on and off,
    /// and across compaction.
    #[test]
    fn segmented_matches_monolithic_recompile(
        pairs in collection::vec(("[a-z]{3,10}( [a-z0-9]{2,6}){0,2}", 0u32..6), 1..12),
        deltas in collection::vec(
            collection::vec(
                (0usize..64, 0u32..4, "[a-z]{3,10}( [a-z0-9]{2,6}){0,2}", 0u32..6),
                1..5,
            ),
            1..4,
        ),
        segments in collection::vec((0usize..64, 0u64..1_000_000_000), 1..5),
    ) {
        let pairs: Vec<(String, EntityId)> = pairs
            .into_iter()
            .map(|(s, e)| (s, EntityId::new(e)))
            .collect();
        check_equivalence(pairs, deltas, segments, FuzzyConfig::default());
    }

    /// Same equivalence with the transform sources (abbreviation +
    /// phonetic keys) enabled: these propose across token-count gaps,
    /// the hard case for the merged chain and for footprint gating.
    #[test]
    fn segmented_matches_monolithic_with_transform_sources(
        pairs in collection::vec(("[a-z]{3,10}( [a-z0-9]{2,6}){0,2}", 0u32..6), 1..10),
        deltas in collection::vec(
            collection::vec(
                (0usize..64, 0u32..4, "[a-z]{3,10}( [a-z0-9]{2,6}){0,2}", 0u32..6),
                1..4,
            ),
            1..3,
        ),
        segments in collection::vec((0usize..64, 0u64..1_000_000_000), 1..4),
    ) {
        let pairs: Vec<(String, EntityId)> = pairs
            .into_iter()
            .map(|(s, e)| (s, EntityId::new(e)))
            .collect();
        let config = FuzzyConfig {
            abbrev: true,
            phonetic: true,
            ..FuzzyConfig::default()
        };
        check_equivalence(pairs, deltas, segments, config);
    }
}

/// Readers resolve on epoch-pinned snapshots while a writer commits
/// deltas and compactions underneath them. Every snapshot must be
/// internally consistent: segmenting through it equals a monolithic
/// recompile of its own serialized artifact, no matter how many
/// commits have landed since it was pinned.
#[test]
fn concurrent_apply_while_resolving() {
    let base: Vec<(String, EntityId)> = (0..24)
        .map(|i| (format!("entity number {i}"), EntityId::new(i)))
        .collect();
    let handle = DictHandle::new(
        EntityMatcher::from_pairs(base)
            .with_fuzzy(FuzzyConfig::default())
            .with_window_cache(512),
    );
    handle.set_auto_compact(4);
    let queries: Vec<String> = (0..8)
        .map(|i| format!("find entity numbr {i} and entity number {} now", i + 8))
        .collect();
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for r in 0..4 {
            let handle = handle.clone();
            let queries = &queries;
            let done = Arc::clone(&done);
            readers.push(scope.spawn(move || {
                let mut iters = 0u32;
                while !done.load(std::sync::atomic::Ordering::Relaxed) || iters < 32 {
                    let snapshot = handle.matcher();
                    let spans: Vec<_> = queries.iter().map(|q| snapshot.segment(q)).collect();
                    if iters % 16 == r {
                        // Pin the snapshot against a monolithic
                        // recompile of its own artifact.
                        #[allow(deprecated)]
                        let recompiled = EntityMatcher::from_tsv(&snapshot.to_tsv()).unwrap();
                        for (q, got) in queries.iter().zip(&spans) {
                            assert_eq!(
                                flatten(got),
                                flatten(&recompiled.segment(q)),
                                "snapshot diverged from its own recompile on {q:?}"
                            );
                        }
                    }
                    iters += 1;
                }
            }));
        }
        // Writer: a burst of commits (upserts, re-points, tombstones)
        // with auto-compaction firing mid-stream.
        for k in 0..24u32 {
            let mut delta = DictDelta::new();
            match k % 3 {
                0 => delta.upsert(&format!("fresh surface {k}"), EntityId::new(100 + k)),
                1 => delta.upsert(&format!("entity number {}", k % 24), EntityId::new(200 + k)),
                _ => delta.tombstone(&format!("entity number {}", k % 24)),
            }
            handle.apply(delta);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        handle.compact();
        done.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader panicked");
        }
    });
    // The final state is consistent and fully merged.
    let stats = handle.stats();
    assert_eq!(stats.pending, 0);
    let m = handle.matcher();
    #[allow(deprecated)]
    let recompiled = EntityMatcher::from_tsv(&m.to_tsv()).unwrap();
    for q in &queries {
        assert_eq!(flatten(&m.segment(q)), flatten(&recompiled.segment(q)));
    }
}
