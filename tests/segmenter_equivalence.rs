//! Equivalence of the compiled token-ID segmenter with its reference
//! implementations.
//!
//! Two generations of invariants live here:
//!
//! - **PR-3 vs PR-2**: the compiled token-ID dictionary (integer-slice
//!   probes) must reproduce the PR-2 String-keyed segmenter span for
//!   span. The fuzzy variant of that check pins
//!   `FuzzyConfig::token_signature = false`, because it replicates the
//!   PR-2 n-gram-only candidate chain.
//! - **PR-5 pruned vs unpruned**: the production fuzzy path now prunes
//!   windows through `CompiledDict::can_reach` and generates
//!   multi-token candidates from the token-run signature index. The
//!   pruning and the fast-path plumbing (single exact descent per
//!   position, window memoization, mapped-token resolution) must be
//!   invisible: a faithful *unpruned* replica of the same candidate
//!   chain — plain per-window loop, no reachability tables, no memo —
//!   must produce byte-identical `MatchSpan` streams on random
//!   dictionaries and typo'd queries.

use proptest::prelude::*;
use websyn::common::{EntityId, FxHashMap, FxHashSet};
use websyn::core::{EntityMatcher, FuzzyConfig, MatchSpan, WindowCache};
use websyn::text::{normalize, NgramIndex, TokenSignatureIndex};

/// A span projected to plain data, so reference and compiled spans
/// compare without sharing types.
type FlatSpan = (usize, usize, String, EntityId, usize);

fn flatten(spans: &[MatchSpan]) -> Vec<FlatSpan> {
    spans
        .iter()
        .map(|s| {
            (
                s.start,
                s.end,
                s.surface().to_string(),
                s.entity,
                s.distance,
            )
        })
        .collect()
}

/// The reference fuzzy side: sorted surfaces + the candidate chain the
/// config selects, verified with the bounded metric, with **no**
/// window pruning or memoization. With `token_signature` off this is
/// the PR-2 n-gram pipeline verbatim; with it on it is the faithful
/// unpruned replica of the PR-5 chain (token-run signatures for
/// multi-token queries, n-grams for single tokens). Copied, not
/// imported — the point is to pin behaviour independently.
struct ReferenceFuzzy {
    config: FuzzyConfig,
    surfaces: Vec<(String, EntityId)>,
    index: NgramIndex,
    signature: Option<TokenSignatureIndex>,
    /// Every token of every surface — "out of vocabulary" below means
    /// absent from this set.
    vocabulary: FxHashSet<String>,
}

impl ReferenceFuzzy {
    fn build(mut pairs: Vec<(String, EntityId)>, config: FuzzyConfig) -> Self {
        pairs.sort_unstable();
        let index = NgramIndex::build(pairs.iter().map(|(s, _)| s.as_str()), config.gram_size);
        let signature = config
            .token_signature
            .then(|| TokenSignatureIndex::build(pairs.iter().map(|(s, _)| s.as_str())));
        let vocabulary = pairs
            .iter()
            .flat_map(|(s, _)| s.split(' ').map(str::to_string))
            .collect();
        Self {
            config,
            surfaces: pairs,
            index,
            signature,
            vocabulary,
        }
    }

    fn resolve(&self, normalized: &str) -> Option<(String, EntityId, usize)> {
        let q_len = normalized.chars().count();
        let budget = self.config.max_distance_for(q_len);
        if budget == 0 {
            return None;
        }
        let tokens = normalized.split(' ').filter(|t| !t.is_empty()).count();
        let candidates = match &self.signature {
            Some(signature) if tokens >= 2 => {
                let mut out = Vec::new();
                signature.candidates_into(normalized, budget, &mut out);
                // Two-token fallback: when no intact run anchors, both
                // tokens are out of vocabulary and the full two-edit
                // budget is available, the char-gram index backstops
                // (mirrors the production chain's fallback entry).
                if out.is_empty()
                    && tokens == 2
                    && budget >= 2
                    && normalized.split(' ').all(|t| !self.vocabulary.contains(t))
                {
                    self.index.candidates_into(normalized, budget, &mut out);
                }
                out
            }
            _ => self.index.candidates(normalized, budget),
        };
        let mut best: Option<(String, EntityId, usize)> = None;
        let mut contested = false;
        for id in candidates {
            let (surface, entity) = &self.surfaces[id as usize];
            let allowed = budget.min(self.config.max_distance_for(self.index.surface_len(id)));
            if allowed == 0 {
                continue;
            }
            let Some(d) = self.config.distance_within(normalized, surface, allowed) else {
                continue;
            };
            match &best {
                Some((_, _, bd)) if d > *bd => {}
                Some((_, be, bd)) if d == *bd => {
                    if entity != be {
                        contested = true;
                    }
                }
                _ => {
                    best = Some((surface.clone(), *entity, d));
                    contested = false;
                }
            }
        }
        if contested {
            None
        } else {
            best
        }
    }
}

/// The PR-2 matcher: String-keyed exact dictionary, `join(" ")` per
/// window, fuzzy fallback inside the same window loop.
struct ReferenceMatcher {
    surfaces: FxHashMap<String, EntityId>,
    max_tokens: usize,
    fuzzy: Option<ReferenceFuzzy>,
}

impl ReferenceMatcher {
    fn from_pairs(pairs: &[(String, EntityId)], fuzzy: Option<FuzzyConfig>) -> Self {
        let mut surfaces: FxHashMap<String, EntityId> = FxHashMap::default();
        let mut banned: FxHashSet<String> = FxHashSet::default();
        for (raw, entity) in pairs {
            let surface = normalize(raw);
            if surface.is_empty() || banned.contains(&surface) {
                continue;
            }
            match surfaces.get(&surface) {
                None => {
                    surfaces.insert(surface, *entity);
                }
                Some(&existing) if existing == *entity => {}
                Some(_) => {
                    surfaces.remove(&surface);
                    banned.insert(surface);
                }
            }
        }
        let max_tokens = surfaces
            .keys()
            .map(|s| s.split(' ').count())
            .max()
            .unwrap_or(0);
        let fuzzy = fuzzy.map(|config| {
            let pairs: Vec<(String, EntityId)> =
                surfaces.iter().map(|(s, &e)| (s.clone(), e)).collect();
            ReferenceFuzzy::build(pairs, config)
        });
        Self {
            surfaces,
            max_tokens,
            fuzzy,
        }
    }

    fn segment(&self, query: &str) -> Vec<FlatSpan> {
        let normalized = normalize(query);
        let tokens: Vec<&str> = normalized.split(' ').filter(|t| !t.is_empty()).collect();
        let mut spans = Vec::new();
        let mut i = 0;
        while i < tokens.len() {
            let mut matched = false;
            let longest = self.max_tokens.min(tokens.len() - i);
            for window in (1..=longest).rev() {
                let window_text = tokens[i..i + window].join(" ");
                if let Some(&entity) = self.surfaces.get(&window_text) {
                    spans.push((i, i + window, window_text, entity, 0));
                    i += window;
                    matched = true;
                    break;
                }
                if let Some(hit) = self.fuzzy.as_ref().and_then(|f| f.resolve(&window_text)) {
                    spans.push((i, i + window, hit.0, hit.1, hit.2));
                    i += window;
                    matched = true;
                    break;
                }
            }
            if !matched {
                i += 1;
            }
        }
        spans
    }
}

/// Applies one deterministic character edit to `s`, driven by `seed`:
/// substitution, deletion, insertion or adjacent transposition.
fn mutate(s: &str, seed: u64) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return s.to_string();
    }
    let pos = (seed / 4) as usize % chars.len();
    let letter = char::from(b'a' + (seed / 64 % 26) as u8);
    let mut out = chars.clone();
    match seed % 4 {
        0 => out[pos] = letter,
        1 => {
            out.remove(pos);
        }
        2 => out.insert(pos, letter),
        _ => {
            if pos + 1 < out.len() {
                out.swap(pos, pos + 1);
            } else {
                out[pos] = letter;
            }
        }
    }
    out.into_iter().collect()
}

/// Builds a query from the dictionary: each `(selector, seed)` segment
/// is a surface verbatim, a surface with one typo, or a noise word.
fn compose_query(surfaces: &[(String, EntityId)], segments: &[(usize, u64)]) -> String {
    let mut parts: Vec<String> = Vec::new();
    for &(selector, seed) in segments {
        let surface = &surfaces[selector % surfaces.len()].0;
        match seed % 3 {
            0 => parts.push(surface.clone()),
            1 => parts.push(mutate(surface, seed / 3)),
            _ => parts.push(format!("noise{}", seed % 97)),
        }
    }
    parts.join(" ")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Exact path: identical span streams with fuzzy disabled.
    #[test]
    fn exact_segmenter_matches_reference(
        pairs in collection::vec(("[a-z]{3,10}( [a-z0-9]{2,6}){0,2}", 0u32..6), 1..14),
        segments in collection::vec((0usize..64, 0u64..1_000_000_000), 1..5),
    ) {
        let pairs: Vec<(String, EntityId)> = pairs
            .into_iter()
            .map(|(s, e)| (s, EntityId::new(e)))
            .collect();
        let reference = ReferenceMatcher::from_pairs(&pairs, None);
        let compiled = EntityMatcher::from_pairs(pairs.clone());
        let query = compose_query(&pairs, &segments);
        prop_assert_eq!(flatten(&compiled.segment(&query)), reference.segment(&query));
        // The dictionary surfaces themselves segment identically too.
        for (s, _) in &pairs {
            prop_assert_eq!(flatten(&compiled.segment(s)), reference.segment(s));
        }
    }

    /// PR-2 fuzzy parity: identical span streams (including distances
    /// and the ambiguity-drop rule) on the n-gram-only chain — the
    /// PR-2 reference predates the token-signature index, so the
    /// compiled matcher pins `token_signature: false` to compare like
    /// with like.
    #[test]
    fn fuzzy_segmenter_matches_reference(
        pairs in collection::vec(("[a-z]{3,10}( [a-z0-9]{2,6}){0,2}", 0u32..6), 1..14),
        segments in collection::vec((0usize..64, 0u64..1_000_000_000), 1..5),
    ) {
        let pairs: Vec<(String, EntityId)> = pairs
            .into_iter()
            .map(|(s, e)| (s, EntityId::new(e)))
            .collect();
        let config = FuzzyConfig {
            token_signature: false,
            ..FuzzyConfig::default()
        };
        let reference = ReferenceMatcher::from_pairs(&pairs, Some(config.clone()));
        let compiled = EntityMatcher::from_pairs(pairs.clone()).with_fuzzy(config);
        let query = compose_query(&pairs, &segments);
        prop_assert_eq!(flatten(&compiled.segment(&query)), reference.segment(&query));
        // Whole-query fuzzy lookup agrees as well.
        match (compiled.lookup_fuzzy(&query), reference.fuzzy.as_ref().unwrap().resolve(&normalize(&query))) {
            (Some(hit), Some((surface, entity, distance))) => {
                prop_assert_eq!(hit.surface(), surface.as_str());
                prop_assert_eq!(hit.entity, entity);
                prop_assert_eq!(hit.distance, distance);
            }
            (new, old) => {
                // Exact whole-query hits resolve before the fuzzy side;
                // the reference resolve still finds them at distance 0.
                let exact = compiled.lookup(&query);
                prop_assert!(
                    new.is_some() == (old.is_some() || exact.is_some()),
                    "lookup_fuzzy diverged: new={:?} old={:?} exact={:?}",
                    new.map(|h| h.surface().to_string()), old, exact
                );
            }
        }
    }

    /// PR-5 pruned ≡ unpruned: the production fuzzy path (window
    /// pruning through the dictionary's reachability tables, one exact
    /// descent per position, token-signature generation for
    /// multi-token windows, window memoization) must return
    /// byte-identical spans to the plain unpruned per-window replica
    /// of the same candidate chain, across random dictionaries and
    /// typo'd queries — pruning may only skip work, never change a
    /// result.
    #[test]
    fn pruned_token_signature_path_matches_unpruned_reference(
        pairs in collection::vec(("[a-z]{3,10}( [a-z0-9]{2,6}){0,2}", 0u32..6), 1..14),
        segments in collection::vec((0usize..64, 0u64..1_000_000_000), 1..5),
    ) {
        let pairs: Vec<(String, EntityId)> = pairs
            .into_iter()
            .map(|(s, e)| (s, EntityId::new(e)))
            .collect();
        let config = FuzzyConfig::default();
        prop_assert!(config.token_signature, "default must exercise the new chain");
        let reference = ReferenceMatcher::from_pairs(&pairs, Some(config.clone()));
        let compiled = EntityMatcher::from_pairs(pairs.clone()).with_fuzzy(config);
        let query = compose_query(&pairs, &segments);
        prop_assert_eq!(flatten(&compiled.segment(&query)), reference.segment(&query));
        // The memoized batch path agrees too (scratch is invisible).
        let batched = compiled.match_batch(std::slice::from_ref(&query), 1);
        prop_assert_eq!(flatten(&batched[0]), reference.segment(&query));
        // Dictionary surfaces themselves still segment identically.
        for (s, _) in &pairs {
            prop_assert_eq!(flatten(&compiled.segment(s)), reference.segment(s));
        }
    }

    /// The cross-batch window cache is a pure-function cache: spans
    /// are byte-identical with it attached and without — across
    /// repeated queries (warm entries), sharded batches, a tiny
    /// capacity (live eviction), and a rebuild-and-swap that re-binds
    /// the same cache to a different dictionary (the generation bump
    /// must hide every old window, in both swap directions).
    #[test]
    fn window_cache_is_invisible_to_spans(
        pairs in collection::vec(("[a-z]{3,10}( [a-z0-9]{2,6}){0,2}", 0u32..6), 2..14),
        seeds in collection::vec((0usize..64, 0u64..1_000_000_000), 1..4),
        n_queries in 1usize..10,
    ) {
        let pairs: Vec<(String, EntityId)> = pairs
            .into_iter()
            .map(|(s, e)| (s, EntityId::new(e)))
            .collect();
        let plain = EntityMatcher::from_pairs(pairs.clone()).with_fuzzy(FuzzyConfig::default());
        // Tiny capacity so eviction is live in the test.
        let cache = std::sync::Arc::new(WindowCache::new(8));
        let cached = plain.clone().with_shared_window_cache(std::sync::Arc::clone(&cache));
        let queries: Vec<String> = (0..n_queries)
            .map(|i| {
                let shifted: Vec<(usize, u64)> = seeds
                    .iter()
                    .map(|&(sel, seed)| (sel + i, seed + i as u64))
                    .collect();
                compose_query(&pairs, &shifted)
            })
            .collect();
        let expected: Vec<Vec<FlatSpan>> =
            queries.iter().map(|q| flatten(&plain.segment(q))).collect();
        // Two passes: the second reads warm entries from the first.
        for _ in 0..2 {
            for (q, want) in queries.iter().zip(&expected) {
                prop_assert_eq!(&flatten(&cached.segment(q)), want);
            }
            let batched = cached.match_batch(&queries, 4);
            for (spans, want) in batched.iter().zip(&expected) {
                prop_assert_eq!(&flatten(spans), want);
            }
        }
        // Rebuild-and-swap: a different dictionary binds the same
        // cache — the warm entries above must be invisible to it.
        let mut swapped_pairs = pairs.clone();
        swapped_pairs.truncate(swapped_pairs.len().div_ceil(2));
        let swapped_plain =
            EntityMatcher::from_pairs(swapped_pairs).with_fuzzy(FuzzyConfig::default());
        let swapped =
            swapped_plain.clone().with_shared_window_cache(std::sync::Arc::clone(&cache));
        for q in &queries {
            prop_assert_eq!(flatten(&swapped.segment(q)), flatten(&swapped_plain.segment(q)));
        }
        // Swapping back must not resurrect the first dictionary's
        // pre-swap windows either.
        for (q, want) in queries.iter().zip(&expected) {
            prop_assert_eq!(&flatten(&cached.segment(q)), want);
        }
    }

    /// `match_batch` over the compiled core is shard-invariant: any
    /// shard count reproduces the sequential segmentation byte for
    /// byte.
    #[test]
    fn match_batch_is_shard_invariant(
        pairs in collection::vec(("[a-z]{3,10}( [a-z0-9]{2,6}){0,2}", 0u32..6), 1..14),
        seeds in collection::vec((0usize..64, 0u64..1_000_000_000), 1..4),
        n_queries in 1usize..20,
    ) {
        let pairs: Vec<(String, EntityId)> = pairs
            .into_iter()
            .map(|(s, e)| (s, EntityId::new(e)))
            .collect();
        let matcher = EntityMatcher::from_pairs(pairs.clone()).with_fuzzy(FuzzyConfig::default());
        let queries: Vec<String> = (0..n_queries)
            .map(|i| {
                let shifted: Vec<(usize, u64)> = seeds
                    .iter()
                    .map(|&(sel, seed)| (sel + i, seed + i as u64))
                    .collect();
                compose_query(&pairs, &shifted)
            })
            .collect();
        let sequential: Vec<Vec<MatchSpan>> =
            queries.iter().map(|q| matcher.segment(q)).collect();
        for shards in [1usize, 2, 3, 7, 16, 64] {
            prop_assert_eq!(&matcher.match_batch(&queries, shards), &sequential, "shards={}", shards);
        }
    }
}
