//! Reproducibility: the whole pipeline is a pure function of the
//! master seed. These tests pin that property across crate boundaries,
//! where it is easiest to lose (thread scheduling in the miner, hash
//! map iteration order, cached SERPs...).

use websyn::prelude::*;
use websyn::synth::queries;

/// Runs the full pipeline rooted at one master seed and returns the
/// complete `MiningResult` plus the session click count.
fn full_result(seq: SeedSequence, n_events: usize) -> (MiningResult, u64) {
    let mut world = World::build(&WorldConfig::small_movies(18, seq.master()));
    let events = queries::generate(&mut world, &QueryStreamConfig::small(n_events));
    let engine = engine_for_world(&world);
    let (log, stats) = simulate_sessions(&world, &engine, &events, &SessionConfig::default());
    let u_set: Vec<String> = world
        .entities
        .iter()
        .map(|e| e.canonical_norm.clone())
        .collect();
    let search = SearchData::collect(&engine, &u_set, 10);
    let n_pages = world.pages.len();
    let ctx = MiningContext::new(u_set, search, log, n_pages);
    let result = SynonymMiner::new(MinerConfig::with_thresholds(3, 0.1)).mine(&ctx);
    (result, stats.clicks)
}

/// The lossy projection the seed tests compare: (entity, text, IPC).
fn mine_once(seed: u64, n_events: usize) -> (Vec<(u32, String, u32)>, u64) {
    let (result, clicks) = full_result(SeedSequence::new(seed), n_events);
    let flattened = result
        .per_entity
        .iter()
        .flat_map(|es| {
            es.synonyms
                .iter()
                .map(move |s| (es.entity.raw(), s.text.clone(), s.ipc))
        })
        .collect();
    (flattened, clicks)
}

/// The guarantee trustworthy benchmarks rest on: two runs from the
/// same `SeedSequence` agree **byte for byte** on the entire
/// `MiningResult` — every entity, synonym text, IPC count and ICR
/// float bit — not merely on a lossy summary.
#[test]
fn same_seed_sequence_byte_identical_mining_result() {
    let (a, _) = full_result(SeedSequence::new(1234), 15_000);
    let (b, _) = full_result(SeedSequence::new(1234), 15_000);
    let bytes_a = format!("{a:?}").into_bytes();
    let bytes_b = format!("{b:?}").into_bytes();
    assert_eq!(
        bytes_a, bytes_b,
        "MiningResult byte representations diverged under the same SeedSequence"
    );
    assert!(
        a.total_synonyms() > 0,
        "trivially-equal empty results prove nothing"
    );
}

#[test]
fn identical_seeds_identical_output() {
    let (a, clicks_a) = mine_once(1234, 15_000);
    let (b, clicks_b) = mine_once(1234, 15_000);
    assert_eq!(clicks_a, clicks_b);
    assert_eq!(a, b, "mined synonym sets diverged under the same seed");
    assert!(!a.is_empty(), "trivially-equal empty outputs prove nothing");
}

#[test]
fn different_seeds_differ() {
    let (a, _) = mine_once(1234, 15_000);
    let (b, _) = mine_once(4321, 15_000);
    assert_ne!(a, b);
}

#[test]
fn parallel_scoring_is_order_stable() {
    // The miner scores entities on multiple threads; results must come
    // back in entity order with identical content run-over-run.
    let mut world = World::build(&WorldConfig::small_movies(24, 9));
    let events = queries::generate(&mut world, &QueryStreamConfig::small(20_000));
    let engine = engine_for_world(&world);
    let (log, _) = simulate_sessions(&world, &engine, &events, &SessionConfig::default());
    let u_set: Vec<String> = world
        .entities
        .iter()
        .map(|e| e.canonical_norm.clone())
        .collect();
    let search = SearchData::collect(&engine, &u_set, 10);
    let n_pages = world.pages.len();
    let ctx = MiningContext::new(u_set, search, log, n_pages);

    let miner = SynonymMiner::default();
    let first = miner.score(&ctx);
    for _ in 0..3 {
        let again = miner.score(&ctx);
        for (x, y) in first.per_entity.iter().zip(again.per_entity.iter()) {
            assert_eq!(x.entity, y.entity);
            assert_eq!(x.candidates, y.candidates);
        }
    }
    for (i, ec) in first.per_entity.iter().enumerate() {
        assert_eq!(ec.entity.as_usize(), i, "entity order broken");
    }
}

#[test]
fn match_batch_shard_counts_are_byte_identical() {
    use websyn::core::FuzzyConfig;

    // A mined dictionary with the fuzzy path enabled, hit with a mix of
    // clean, misspelled, and junk queries — sharding must never change
    // a single byte of the output.
    let mut world = World::build(&WorldConfig::small_movies(20, 21));
    let events = queries::generate(&mut world, &QueryStreamConfig::small(15_000));
    let engine = engine_for_world(&world);
    let (log, _) = simulate_sessions(&world, &engine, &events, &SessionConfig::default());
    let u_set: Vec<String> = world
        .entities
        .iter()
        .map(|e| e.canonical_norm.clone())
        .collect();
    let search = SearchData::collect(&engine, &u_set, 10);
    let n_pages = world.pages.len();
    let ctx = MiningContext::new(u_set, search, log, n_pages);
    let result = SynonymMiner::new(MinerConfig::with_thresholds(3, 0.1)).mine(&ctx);
    let matcher = EntityMatcher::from_mining(&result, &ctx).with_fuzzy(FuzzyConfig::default());

    let mut queries_batch: Vec<String> = Vec::new();
    for u in &ctx.u_set {
        queries_batch.push(format!("{u} near san francisco"));
        let misspelled = websyn::text::double_middle_char(u);
        queries_batch.push(format!("watch {misspelled} online"));
        queries_batch.push("completely unrelated query text".to_string());
    }

    let reference = matcher.match_batch(&queries_batch, 1);
    let reference_bytes = format!("{reference:?}").into_bytes();
    assert!(
        reference.iter().any(|spans| !spans.is_empty()),
        "trivially-equal empty outputs prove nothing"
    );
    for shards in [2usize, 8] {
        let sharded = matcher.match_batch(&queries_batch, shards);
        assert_eq!(
            format!("{sharded:?}").into_bytes(),
            reference_bytes,
            "{shards}-shard output diverged from single-shard"
        );
    }
    // And the single-shard path agrees with plain segment().
    let sequential: Vec<_> = queries_batch.iter().map(|q| matcher.segment(q)).collect();
    assert_eq!(reference, sequential);
}

#[test]
fn session_replicas_share_world_but_differ_in_clicks() {
    let mut world = World::build(&WorldConfig::small_movies(12, 77));
    let events = queries::generate(&mut world, &QueryStreamConfig::small(8_000));
    let engine = engine_for_world(&world);
    let (log0, s0) = simulate_sessions(&world, &engine, &events, &SessionConfig::default());
    let (log1, s1) = simulate_sessions(
        &world,
        &engine,
        &events,
        &SessionConfig {
            replica: 1,
            ..Default::default()
        },
    );
    // Same impressions (the stream is fixed), different click detail.
    assert_eq!(log0.total_impressions(), log1.total_impressions());
    assert_ne!(s0.clicks, s1.clicks);
}
