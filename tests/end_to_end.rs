//! End-to-end integration tests: world → logs → miner → metrics, on
//! both domains, asserting the paper's qualitative claims hold on
//! small-scale pipelines.

use websyn::prelude::*;
use websyn::synth::{queries, AliasSource, Relation};

/// Builds a complete mining context for a config.
fn pipeline(config: &WorldConfig, n_events: usize) -> (World, MiningContext) {
    let mut world = World::build(config);
    let events = queries::generate(&mut world, &QueryStreamConfig::small(n_events));
    let engine = engine_for_world(&world);
    let (log, _) = simulate_sessions(&world, &engine, &events, &SessionConfig::default());
    let u_set: Vec<String> = world
        .entities
        .iter()
        .map(|e| e.canonical_norm.clone())
        .collect();
    let search = SearchData::collect(&engine, &u_set, 20);
    let n_pages = world.pages.len();
    let ctx = MiningContext::new(u_set, search, log, n_pages);
    (world, ctx)
}

#[test]
fn movies_pipeline_mines_true_synonyms() {
    let (world, ctx) = pipeline(&WorldConfig::small_movies(25, 41), 40_000);
    let result = SynonymMiner::new(MinerConfig::with_thresholds(4, 0.1)).mine(&ctx);
    let report = evaluate(&result, &ctx, &world);
    assert!(report.hits >= 20, "hits {}", report.hits);
    assert!(report.precision > 0.5, "{report}");
    assert!(report.expansion_ratio > 1.5, "{report}");
    assert!(report.coverage_increase() > 0.5, "{report}");
}

#[test]
fn cameras_pipeline_mines_model_tails_and_marketing_names() {
    let (world, ctx) = pipeline(&WorldConfig::small_cameras(60, 42), 60_000);
    let result = SynonymMiner::new(MinerConfig::with_thresholds(4, 0.1)).mine(&ctx);
    // At least one mined synonym must be a bare model tail and (if any
    // were planted and queried) marketing names should be recoverable.
    let mut tails = 0;
    let mut marketing = 0;
    for es in &result.per_entity {
        for syn in &es.synonyms {
            match world.truth.lookup(&syn.text).map(|t| t.source) {
                Some(AliasSource::Mechanical(websyn::text::AbbrevKind::TailToken)) => {
                    tails += 1;
                }
                Some(AliasSource::Marketing) => marketing += 1,
                _ => {}
            }
        }
    }
    assert!(tails > 10, "model tails mined: {tails}");
    assert!(marketing > 0, "marketing names mined: {marketing}");
}

#[test]
fn nicknames_with_no_token_overlap_are_recovered() {
    // The paper's flagship case: "indy 4"-style surfaces share no token
    // with the canonical title and are unreachable for any string
    // method, but log mining finds them.
    let (world, ctx) = pipeline(&WorldConfig::small_movies(30, 43), 50_000);
    let result = SynonymMiner::new(MinerConfig::with_thresholds(3, 0.1)).mine(&ctx);
    let mut recovered = 0;
    for es in &result.per_entity {
        let entity = &world.entities[es.entity.as_usize()];
        for syn in &es.synonyms {
            let overlap = entity
                .canonical_norm
                .split(' ')
                .any(|t| syn.text.split(' ').any(|s| s == t));
            if !overlap && world.truth.is_true_synonym(&syn.text, es.entity) {
                recovered += 1;
            }
        }
    }
    assert!(recovered > 0, "no zero-overlap synonyms recovered");
}

#[test]
fn misspelled_mention_resolves_through_fuzzy_pipeline() {
    // The tentpole claim end to end: mine a camera world, compile the
    // matcher, enable fuzzy lookup, and resolve misspelled mentions
    // ("cannon eos …") that the exact matcher misses to the correct
    // entities. The eval itself lives in
    // `websyn_bench::misspelled_camera_recovery` — the same fixture
    // the matcher benchmark commits to `BENCH_matcher.json` and the
    // CI recall gate enforces at full recovery, so this test and the
    // gated number can never measure different things.
    let (recovered, total) = websyn_bench::misspelled_camera_recovery();
    assert!(total > 0, "every misspelling still matched exactly");
    assert!(
        recovered > 0,
        "fuzzy matching recovered none of {total} mentions the exact matcher missed"
    );
}

#[test]
fn threshold_monotonicity_end_to_end() {
    let (world, ctx) = pipeline(&WorldConfig::small_movies(20, 44), 30_000);
    let miner = SynonymMiner::default();
    let scored = miner.score(&ctx);
    let mut last_n = usize::MAX;
    let mut first_precision = None;
    let mut last_precision = 0.0;
    for beta in [2u32, 4, 6, 8] {
        let result = websyn::core::miner::select_with(&ctx, &scored, beta, 0.1, miner.config);
        let report = evaluate(&result, &ctx, &world);
        assert!(report.n_synonyms <= last_n, "β={beta} grew the synonym set");
        last_n = report.n_synonyms;
        if report.n_synonyms > 0 {
            first_precision.get_or_insert(report.precision);
            last_precision = report.precision;
        }
    }
    // Precision at the strictest β should not be (much) below the
    // loosest — the Figure 2 trend.
    if let Some(first) = first_precision {
        assert!(
            last_precision >= first - 0.05,
            "precision trend inverted: {first} -> {last_precision}"
        );
    }
}

#[test]
fn hypernyms_receive_low_icr_against_members() {
    // Fig. 1b measured: for franchise names that are candidates of a
    // member entity, ICR must sit well below a true synonym's ICR.
    let (world, ctx) = pipeline(&WorldConfig::small_movies(30, 45), 50_000);
    let miner = SynonymMiner::new(MinerConfig {
        top_k: 10,
        ipc_threshold: 1,
        icr_threshold: 0.0,
        ..Default::default()
    });
    let scored = miner.score(&ctx);
    let mut hypernym_icrs = Vec::new();
    let mut synonym_icrs = Vec::new();
    for ec in &scored.per_entity {
        for cand in &ec.candidates {
            let text = ctx.log.query_text(cand.query);
            match world.relation_of(text, ec.entity) {
                Some(Relation::Hypernym) => hypernym_icrs.push(cand.icr),
                Some(Relation::Synonym) => synonym_icrs.push(cand.icr),
                _ => {}
            }
        }
    }
    if hypernym_icrs.is_empty() || synonym_icrs.is_empty() {
        return; // world too small to exhibit both; other seeds cover it
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&synonym_icrs) > mean(&hypernym_icrs),
        "synonym ICR {} should exceed hypernym ICR {}",
        mean(&synonym_icrs),
        mean(&hypernym_icrs)
    );
}

#[test]
fn surrogate_depth_bounds_ipc() {
    let (_, ctx) = pipeline(&WorldConfig::small_movies(15, 46), 20_000);
    for k in [2usize, 5, 10] {
        let miner = SynonymMiner::new(MinerConfig {
            top_k: k,
            ..Default::default()
        });
        let scored = miner.score(&ctx);
        for ec in &scored.per_entity {
            assert!(ec.n_surrogates <= k);
            for cand in &ec.candidates {
                assert!(cand.ipc as usize <= k, "IPC {} > k {k}", cand.ipc);
                assert!((0.0..=1.0).contains(&cand.icr));
            }
        }
    }
}

#[test]
fn canonical_strings_never_mined_as_their_own_synonyms() {
    let (_, ctx) = pipeline(&WorldConfig::small_movies(20, 47), 30_000);
    let result = SynonymMiner::new(MinerConfig::with_thresholds(1, 0.0)).mine(&ctx);
    for es in &result.per_entity {
        let canonical = ctx.canonical(es.entity);
        for syn in &es.synonyms {
            assert_ne!(syn.text, canonical, "canonical mined for itself");
        }
    }
}
