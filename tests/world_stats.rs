//! Distributional properties of the *full-scale* experiment worlds
//! (the exact presets the figure/table binaries use). Pure generation —
//! no log simulation — so these run fast even at paper scale.

use websyn::prelude::*;
use websyn::synth::{Domain, WorldReport};

#[test]
fn movies_2008_world_shape() {
    let world = World::build(&WorldConfig::movies_2008());
    let r = WorldReport::of(&world);
    assert_eq!(r.entities, 100);
    assert_eq!(world.domain(), Domain::Movies);
    // Franchise structure exists and is bounded.
    assert!(r.franchises >= 8, "franchises {}", r.franchises);
    for f in &world.franchises {
        assert!((2..=4).contains(&f.members.len()));
    }
    // Semantic synonyms (the "indy 4" class) were planted and survived
    // ambiguity resolution.
    assert!(
        r.semantic_synonyms >= 10,
        "semantic {}",
        r.semantic_synonyms
    );
    // The page universe scales like a real Web slice: several pages per
    // entity plus hubs and noise.
    assert!(r.pages_per_entity() >= 4.0);
    assert!(r.synonyms_per_entity() >= 3.0);
}

#[test]
fn cameras_msn_world_shape() {
    let world = World::build(&WorldConfig::cameras_msn());
    let r = WorldReport::of(&world);
    assert_eq!(r.entities, 882);
    assert_eq!(world.domain(), Domain::Cameras);
    // Every camera sits in a brand-line franchise.
    for e in &world.entities {
        assert!(e.franchise.is_some());
    }
    // Model tails make the synonym universe rich even without
    // marketing names.
    assert!(r.synonyms_per_entity() >= 2.0);
    // Cameras have *more* pages per entity than their popularity alone
    // would suggest (retail listings), which is what keeps surrogates
    // specific (EXPERIMENTS.md ablation 5 discussion).
    assert!(r.pages_per_entity() >= 8.0, "{}", r.pages_per_entity());
}

#[test]
fn full_scale_worlds_are_reproducible() {
    let a = WorldReport::of(&World::build(&WorldConfig::movies_2008()));
    let b = WorldReport::of(&World::build(&WorldConfig::movies_2008()));
    assert_eq!(a, b);
    let c = WorldReport::of(&World::build(&WorldConfig::cameras_msn()));
    let d = WorldReport::of(&World::build(&WorldConfig::cameras_msn()));
    assert_eq!(c, d);
}

#[test]
fn oracle_covers_every_surface_in_both_worlds() {
    for config in [WorldConfig::movies_2008(), WorldConfig::cameras_msn()] {
        let world = World::build(&config);
        for alias in world.aliases.iter() {
            let entry = world
                .truth
                .lookup(&alias.text)
                .unwrap_or_else(|| panic!("surface {:?} unknown to oracle", alias.text));
            assert_eq!(entry.target, alias.target);
        }
    }
}

#[test]
fn page_text_is_normalized_everywhere() {
    // The engine's fast path and the planted-surface matching both
    // assume page text is already in canonical form.
    let world = World::build(&WorldConfig::movies_2008());
    for page in world.pages.iter().take(200) {
        assert_eq!(
            websyn::text::normalize(&page.title),
            page.title,
            "{}",
            page.url
        );
        assert_eq!(
            websyn::text::normalize(&page.body),
            page.body,
            "{}",
            page.url
        );
    }
}
