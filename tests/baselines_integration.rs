//! Baseline behaviour on full synthetic worlds: the structural claims
//! behind the paper's Table I, at test scale.

use websyn::baselines::{EditDistanceBaseline, SubstringBaseline, WalkBaseline, WikiBaseline};
use websyn::prelude::*;
use websyn::synth::queries;

fn pipeline(config: &WorldConfig, n_events: usize) -> (World, MiningContext) {
    let mut world = World::build(config);
    let events = queries::generate(&mut world, &QueryStreamConfig::small(n_events));
    let engine = engine_for_world(&world);
    let (log, _) = simulate_sessions(&world, &engine, &events, &SessionConfig::default());
    let u_set: Vec<String> = world
        .entities
        .iter()
        .map(|e| e.canonical_norm.clone())
        .collect();
    let search = SearchData::collect(&engine, &u_set, 10);
    let n_pages = world.pages.len();
    let ctx = MiningContext::new(u_set, search, log, n_pages);
    (world, ctx)
}

#[test]
fn wiki_gap_between_movies_and_cameras() {
    // The paper's central Table I contrast: curated redirects cover
    // popular movies far better than tail cameras.
    let movies = World::build(&WorldConfig::small_movies(60, 61));
    let movies_out = WikiBaseline::for_domain(movies.domain()).run(&movies, movies.seq());
    let cameras = World::build(&WorldConfig::small_cameras(400, 61));
    let cameras_out = WikiBaseline::for_domain(cameras.domain()).run(&cameras, cameras.seq());
    assert!(
        movies_out.hit_ratio() > cameras_out.hit_ratio() + 0.3,
        "movies {:.2} vs cameras {:.2}",
        movies_out.hit_ratio(),
        cameras_out.hit_ratio()
    );
}

#[test]
fn walk_gated_by_canonical_queries() {
    // "if a query has not been asked then no synonym will be produced".
    let (_, ctx) = pipeline(&WorldConfig::small_cameras(80, 62), 40_000);
    let walk = WalkBaseline::default();
    let out = walk.run(&ctx.u_set, &ctx.log, &ctx.graph);
    let reachable = walk.reachable(&ctx.u_set, &ctx.log);
    assert!(
        out.hits() <= reachable,
        "walk produced synonyms for unqueried canonicals"
    );
    // The camera canonical-weight regime leaves a real fraction of the
    // catalog unreachable.
    assert!(
        reachable < ctx.n_entities(),
        "every canonical was queried — the tail regime is not exercised"
    );
}

#[test]
fn us_beats_baselines_on_hits_movies() {
    let (world, ctx) = pipeline(&WorldConfig::small_movies(40, 63), 60_000);
    let result = SynonymMiner::new(MinerConfig::with_thresholds(4, 0.1)).mine(&ctx);
    let us_hits = result.hits();
    let wiki = WikiBaseline::for_domain(world.domain()).run(&world, world.seq());
    let walk = WalkBaseline::default().run(&ctx.u_set, &ctx.log, &ctx.graph);
    assert!(
        us_hits >= wiki.hits(),
        "us {us_hits} < wiki {}",
        wiki.hits()
    );
    assert!(
        us_hits >= walk.hits(),
        "us {us_hits} < walk {}",
        walk.hits()
    );
}

#[test]
fn substring_misses_zero_overlap_synonyms() {
    let (world, ctx) = pipeline(&WorldConfig::small_movies(40, 64), 50_000);
    let out = SubstringBaseline::default().run(&ctx.u_set, &ctx.log);
    // Every substring "synonym" shares tokens with its canonical by
    // construction, so nickname surfaces are structurally unreachable.
    for (i, synonyms) in out.per_entity.iter().enumerate() {
        let canonical = &ctx.u_set[i];
        for s in synonyms {
            assert!(
                s.split(' ')
                    .all(|tok| canonical.split(' ').any(|c| c == tok)),
                "substring baseline produced out-of-vocabulary token in {s:?}"
            );
        }
    }
    let _ = world;
}

#[test]
fn trigram_recovers_misspellings_but_trails_on_nicknames() {
    let (world, ctx) = pipeline(&WorldConfig::small_movies(30, 65), 40_000);
    let out = EditDistanceBaseline::default().run(&ctx.u_set, &ctx.log);
    let result = SynonymMiner::new(MinerConfig::with_thresholds(3, 0.1)).mine(&ctx);

    type PairVisitor<'a> = dyn Fn(&mut dyn FnMut(usize, &str)) + 'a;
    let count_sources = |pairs: &PairVisitor| {
        let (mut misspellings, mut nicknames) = (0usize, 0usize);
        pairs(&mut |i, s| {
            let e = websyn::common::EntityId::from_usize(i);
            match world.truth.lookup(s).map(|t| t.source) {
                Some(websyn::synth::AliasSource::Misspelling)
                    if world.truth.is_true_synonym(s, e) =>
                {
                    misspellings += 1;
                }
                Some(websyn::synth::AliasSource::Nickname) if world.truth.is_true_synonym(s, e) => {
                    nicknames += 1;
                }
                _ => {}
            }
        });
        (misspellings, nicknames)
    };

    let (trigram_misspellings, trigram_nicknames) = count_sources(&|f| {
        for (i, synonyms) in out.per_entity.iter().enumerate() {
            for s in synonyms {
                f(i, s);
            }
        }
    });
    let (_, mined_nicknames) = count_sources(&|f| {
        for es in &result.per_entity {
            for s in &es.synonyms {
                f(es.entity.as_usize(), &s.text);
            }
        }
    });

    assert!(
        trigram_misspellings > 0,
        "trigram should catch misspellings"
    );
    // String similarity reaches only the clipped-prefix nicknames; the
    // miner reaches the zero-overlap ones too.
    assert!(
        mined_nicknames > trigram_nicknames,
        "mined {mined_nicknames} should exceed trigram {trigram_nicknames}"
    );
}

#[test]
fn all_baselines_report_consistent_table_rows() {
    let (world, ctx) = pipeline(&WorldConfig::small_movies(20, 66), 20_000);
    let outputs = vec![
        WikiBaseline::for_domain(world.domain()).run(&world, world.seq()),
        WalkBaseline::default().run(&ctx.u_set, &ctx.log, &ctx.graph),
        SubstringBaseline::default().run(&ctx.u_set, &ctx.log),
        EditDistanceBaseline::default().run(&ctx.u_set, &ctx.log),
    ];
    for out in outputs {
        assert_eq!(out.n_entities(), 20);
        assert!(out.hits() <= out.n_entities());
        assert!(out.expansion_ratio() >= 1.0 || out.n_entities() == 0);
        let row = out.table_row();
        assert!(row.contains(&out.name));
        let p = out.precision(&world);
        assert!((0.0..=1.0).contains(&p));
    }
}
