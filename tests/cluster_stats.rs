//! Cluster `/stats` aggregation over live HTTP roundtrips: a router in
//! front of two in-process workers must answer `/stats` with the
//! *sum* of each worker's counters — including the matcher-level
//! window-cache counters introduced alongside the cross-batch window
//! cache — and fuzzy traffic through the routed path must actually
//! move those counters.

use std::io::{BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use websyn::serve::cluster::load_dict;
use websyn::serve::http::{percent_encode, read_response};
use websyn::serve::{
    Engine, HttpProtocol, Ring, Router, RouterConfig, Server, ServerConfig, ServerHandle,
};

/// One `GET` on a fresh connection (Connection: close), returning
/// (status, body).
fn get(addr: std::net::SocketAddr, target: &str) -> (u16, String) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(format!("GET {target} HTTP/1.1\r\nConnection: close\r\n\r\n").as_bytes())
        .expect("write");
    let mut reader = BufReader::new(conn);
    read_response(&mut reader).expect("response")
}

/// Reads one unsigned field out of the fixed-grammar stats JSON.
fn stats_field(body: &str, key: &str) -> u64 {
    let pattern = format!("\"{key}\":");
    let at = body
        .find(&pattern)
        .unwrap_or_else(|| panic!("{key} missing from {body}"));
    body[at + pattern.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("digits")
}

fn worker() -> ServerHandle {
    let dict = load_dict(None).expect("demo dictionary");
    assert!(
        dict.matcher().window_cache().is_some(),
        "serving-path matchers carry a window cache"
    );
    let engine = Arc::new(Engine::builder_with_dict(dict).build());
    Server::start_with(
        engine,
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::new(HttpProtocol),
    )
    .expect("worker")
}

#[test]
fn router_stats_sum_worker_window_cache_counters() {
    let workers = [worker(), worker()];
    let ring = Arc::new(Ring::new(workers.len(), 1));
    for (slot, w) in workers.iter().enumerate() {
        ring.publish(slot, w.addr());
    }
    let router =
        Router::start("127.0.0.1:0", Arc::clone(&ring), RouterConfig::default()).expect("router");

    // Fuzzy traffic through the routed path: distinct typo'd queries
    // (so the engines' result caches cannot absorb them) that resolve
    // against the demo dictionary.
    for (query, surface) in [
        ("canon eso 350d price", "canon eos 350d"),
        ("cheap canon eos 350dd", "canon eos 350d"),
        ("indianna jones 4 trailer", "indiana jones 4"),
        ("madagasacr 2 dvd", "madagascar 2"),
        ("watch madagascar 2 online", "madagascar 2"),
        ("digital rebl xt review", "digital rebel xt"),
    ] {
        let (status, body) = get(
            router.addr(),
            &format!("/match?q={}", percent_encode(query)),
        );
        assert_eq!(status, 200, "{query}: {body}");
        assert!(body.contains(surface), "{query} → {body}");
    }

    // The routed /stats must be the field-wise sum of the workers'.
    let mut want_hits = 0u64;
    let mut want_misses = 0u64;
    let mut want_window_hits = 0u64;
    let mut want_window_misses = 0u64;
    for w in &workers {
        let (status, body) = get(w.addr(), "/stats");
        assert_eq!(status, 200);
        want_hits += stats_field(&body, "hits");
        want_misses += stats_field(&body, "misses");
        want_window_hits += stats_field(&body, "window_hits");
        want_window_misses += stats_field(&body, "window_misses");
    }
    let (status, body) = get(router.addr(), "/stats");
    assert_eq!(status, 200);
    assert_eq!(stats_field(&body, "workers"), workers.len() as u64);
    assert_eq!(stats_field(&body, "hits"), want_hits, "{body}");
    assert_eq!(stats_field(&body, "misses"), want_misses, "{body}");
    assert_eq!(
        stats_field(&body, "window_hits"),
        want_window_hits,
        "{body}"
    );
    assert_eq!(
        stats_field(&body, "window_misses"),
        want_window_misses,
        "{body}"
    );
    // Fuzzy resolutions really flowed through the window cache: every
    // query above carried at least one fuzzy window.
    assert!(want_window_misses > 0, "no window-cache traffic recorded");

    router.shutdown();
    for w in workers {
        w.shutdown();
    }
}
