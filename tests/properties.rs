//! Cross-crate property tests: invariants that must hold for *any*
//! click data, not just the synthetic worlds.

use proptest::prelude::*;
use websyn::click::{ClickGraph, ClickLogBuilder, RandomWalk};
use websyn::common::{PageId, QueryId};
use websyn::core::measures::score_candidate;
use websyn::core::{MiningContext, SurrogateTable};
use websyn::engine::{SearchData, SearchEngine};

/// A random click log: queries "q0".."q{nq}", pages 0..np, and a set of
/// (query, page, clicks) triples.
fn arb_click_data(nq: usize, np: usize) -> impl Strategy<Value = Vec<(usize, usize, u8)>> {
    proptest::collection::vec((0..nq, 0..np, 1u8..5), 1..40)
}

/// Builds a mining context whose Search Data assigns each query string
/// in `u_set` a fixed fake surrogate set (pages 0..k), using a tiny
/// real engine over synthetic one-token docs.
fn build_ctx(clicks: &[(usize, usize, u8)], nq: usize, np: usize) -> MiningContext {
    // Docs: page i contains the token "u0" so that the single entity
    // string retrieves the first few pages deterministically.
    let docs: Vec<(PageId, String, String)> = (0..np)
        .map(|i| {
            let text = if i < np.min(5) {
                "u0 entity page"
            } else {
                "filler page"
            };
            (PageId::from_usize(i), format!("title{i}"), text.to_string())
        })
        .collect();
    let engine =
        SearchEngine::from_docs(docs.iter().map(|(id, t, b)| (*id, t.as_str(), b.as_str())));
    let u_set = vec!["u0".to_string()];
    let search = SearchData::collect(&engine, &u_set, 10);

    let mut builder = ClickLogBuilder::new();
    let qids: Vec<QueryId> = (0..nq)
        .map(|i| builder.add_impression(&format!("q{i}")))
        .collect();
    for &(q, p, n) in clicks {
        for _ in 0..n {
            builder.add_click(qids[q], PageId::from_usize(p));
        }
    }
    MiningContext::new(u_set, search, builder.build(), np)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ipc_icr_invariants_hold_for_any_click_data(
        clicks in arb_click_data(6, 12),
    ) {
        let ctx = build_ctx(&clicks, 6, 12);
        let surrogates = SurrogateTable::build(&ctx, 10);
        let e = websyn::common::EntityId::new(0);
        for q in 0..ctx.log.n_queries() {
            let q = QueryId::from_usize(q);
            let s = score_candidate(&ctx, &surrogates, e, q);
            // ICR ∈ [0, 1].
            prop_assert!((0.0..=1.0).contains(&s.icr), "icr {}", s.icr);
            // IPC bounded by both set sizes (Eq. 3 is an intersection).
            prop_assert!(s.ipc as usize <= surrogates.of(e).len());
            prop_assert!(s.ipc as usize <= ctx.log.clicks_of(q).len());
            // IPC > 0 ⇔ ICR > 0.
            prop_assert_eq!(s.ipc > 0, s.icr > 0.0);
        }
    }

    #[test]
    fn graph_conserves_click_mass(clicks in arb_click_data(5, 10)) {
        let mut builder = ClickLogBuilder::new();
        let qids: Vec<QueryId> = (0..5)
            .map(|i| builder.add_impression(&format!("q{i}")))
            .collect();
        let mut total = 0u64;
        for &(q, p, n) in &clicks {
            for _ in 0..n {
                builder.add_click(qids[q], PageId::from_usize(p));
                total += 1;
            }
        }
        let log = builder.build();
        let graph = ClickGraph::build(&log, 10);
        let forward: u64 = (0..graph.n_queries())
            .map(|q| graph.query_degree(QueryId::from_usize(q)))
            .sum();
        let backward: u64 = (0..graph.n_pages())
            .map(|p| graph.page_degree(PageId::from_usize(p)))
            .sum();
        prop_assert_eq!(forward, total);
        prop_assert_eq!(backward, total);
    }

    #[test]
    fn random_walk_mass_never_exceeds_one(
        clicks in arb_click_data(5, 8),
        steps in 0usize..8,
        self_transition in 0.0f64..=1.0,
    ) {
        let mut builder = ClickLogBuilder::new();
        let qids: Vec<QueryId> = (0..5)
            .map(|i| builder.add_impression(&format!("q{i}")))
            .collect();
        for &(q, p, n) in &clicks {
            for _ in 0..n {
                builder.add_click(qids[q], PageId::from_usize(p));
            }
        }
        let log = builder.build();
        let graph = ClickGraph::build(&log, 8);
        let walk = RandomWalk { self_transition, steps, prune: 0.0 };
        let dist = walk.from_query(&graph, qids[0]);
        let total: f64 = dist.iter().map(|&(_, m)| m).sum();
        prop_assert!(total <= 1.0 + 1e-9, "total query mass {total}");
        for &(_, m) in &dist {
            prop_assert!(m >= 0.0);
        }
    }

    #[test]
    fn codec_roundtrips_any_log(clicks in arb_click_data(6, 12)) {
        let mut builder = ClickLogBuilder::new();
        let qids: Vec<QueryId> = (0..6)
            .map(|i| builder.add_impression(&format!("query number {i}")))
            .collect();
        for &(q, p, n) in &clicks {
            for _ in 0..n {
                builder.add_click(qids[q], PageId::from_usize(p));
            }
        }
        let log = builder.build();
        let decoded = websyn::click::codec::decode(websyn::click::codec::encode(&log))
            .expect("roundtrip");
        prop_assert_eq!(decoded.n_queries(), log.n_queries());
        prop_assert_eq!(decoded.tuples(), log.tuples());
        for (q, text) in log.queries() {
            let dq = decoded.query_id(text).expect("query preserved");
            prop_assert_eq!(decoded.impressions(dq), log.impressions(q));
        }
    }

    #[test]
    fn selection_is_antitone_in_both_thresholds(
        clicks in arb_click_data(6, 12),
        beta in 1u32..6,
        gamma in 0.0f64..1.0,
    ) {
        let ctx = build_ctx(&clicks, 6, 12);
        let surrogates = SurrogateTable::build(&ctx, 10);
        let e = websyn::common::EntityId::new(0);
        let scores: Vec<_> = (0..ctx.log.n_queries())
            .map(|q| score_candidate(&ctx, &surrogates, e, QueryId::from_usize(q)))
            .collect();
        let count = |b: u32, g: f64| websyn::core::select(&scores, b, g).count();
        prop_assert!(count(beta + 1, gamma) <= count(beta, gamma));
        prop_assert!(count(beta, (gamma + 0.1).min(1.0)) <= count(beta, gamma));
    }
}

/// A small universe of dictionary-ish surfaces for the fuzzy-matcher
/// properties: 1–2 tokens, long enough that some (not all) afford
/// edits under the default config.
fn arb_surfaces() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-z]{3,10}( [a-z0-9]{2,6})?", 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fuzzy matcher never resolves to a surface beyond the
    /// length-scaled edit-distance budget of its config — the
    /// verification stage is authoritative, whatever candidate
    /// generation proposes.
    #[test]
    fn fuzzy_never_fires_beyond_configured_distance(
        surfaces in arb_surfaces(),
        query in "[a-z]{1,12}( [a-z0-9]{1,6})?",
    ) {
        use websyn::core::FuzzyConfig;
        use websyn::text::normalize;

        let cfg = FuzzyConfig::default();
        let m = websyn::core::EntityMatcher::from_pairs(
            surfaces
                .iter()
                .enumerate()
                .map(|(i, s)| (s.clone(), websyn::common::EntityId::from_usize(i))),
        )
        .with_fuzzy(cfg.clone());
        if let Some(hit) = m.lookup_fuzzy(&query) {
            let q = normalize(&query);
            // Reported distance is the real metric distance…
            prop_assert_eq!(hit.distance, cfg.distance(&q, hit.surface()));
            // …and within the budget of BOTH sides' lengths.
            let allowed = cfg
                .max_distance_for(q.chars().count())
                .min(cfg.max_distance_for(hit.surface().chars().count()));
            if hit.distance > 0 {
                prop_assert!(
                    hit.distance <= allowed,
                    "distance {} exceeds budget {} for {:?} -> {:?}",
                    hit.distance, allowed, q, hit.surface()
                );
            }
        }
        // Same property for every span the segmenter emits.
        for span in m.segment(&query) {
            if span.distance > 0 {
                prop_assert!(
                    span.distance <= cfg.max_distance_for(span.surface().chars().count()),
                    "span distance {} beyond budget for {:?}",
                    span.distance, span.surface()
                );
            }
        }
    }

    /// Enabling fuzzy matching changes nothing for surfaces that
    /// resolve exactly: same entity, distance 0, identical spans.
    #[test]
    fn exact_surfaces_resolve_identically_with_fuzzy_enabled(
        surfaces in arb_surfaces(),
    ) {
        use websyn::core::FuzzyConfig;

        let exact = websyn::core::EntityMatcher::from_pairs(
            surfaces
                .iter()
                .enumerate()
                .map(|(i, s)| (s.clone(), websyn::common::EntityId::from_usize(i))),
        );
        let fuzzy = exact.clone().with_fuzzy(FuzzyConfig::default());
        for s in &surfaces {
            // Only surfaces that survived dictionary compilation
            // (duplicates claimed by two entities are dropped).
            let Some(entity) = exact.lookup(s) else { continue };
            prop_assert_eq!(fuzzy.lookup(s), Some(entity));
            let hit = fuzzy.lookup_fuzzy(s).expect("exact surface must resolve");
            prop_assert_eq!(hit.entity, entity);
            prop_assert_eq!(hit.distance, 0);
            prop_assert_eq!(exact.segment(s), fuzzy.segment(s));
        }
    }
}

#[test]
fn matcher_segmentation_never_overlaps() {
    use websyn::core::EntityMatcher;
    let matcher = EntityMatcher::from_pairs(vec![
        ("a b", websyn::common::EntityId::new(0)),
        ("b c d", websyn::common::EntityId::new(1)),
        ("d", websyn::common::EntityId::new(2)),
    ]);
    // Brute-force probe over short token alphabets.
    let tokens = ["a", "b", "c", "d", "x"];
    let mut buf = String::new();
    for i in 0..tokens.len() {
        for j in 0..tokens.len() {
            for k in 0..tokens.len() {
                buf.clear();
                buf.push_str(tokens[i]);
                buf.push(' ');
                buf.push_str(tokens[j]);
                buf.push(' ');
                buf.push_str(tokens[k]);
                let spans = matcher.segment(&buf);
                for w in spans.windows(2) {
                    assert!(w[0].end <= w[1].start, "overlap in {buf:?}");
                }
                for s in &spans {
                    assert!(s.start < s.end);
                    assert!(s.end <= 3);
                }
            }
        }
    }
}
