//! # websyn — fuzzy matching of Web queries to structured data
//!
//! A from-scratch reproduction of *Cheng, Lauw & Paparizos, "Fuzzy
//! Matching of Web Queries to Structured Data", ICDE 2010*: mining
//! query and click logs to expand structured entities (movies, cameras)
//! with the alternative strings Web users actually type — `"indy 4"`
//! for *Indiana Jones and the Kingdom of the Crystal Skull*,
//! `"digital rebel xt"` for *Canon EOS 350D* — and then using the
//! expanded dictionary to resolve free-form queries to entities.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! | --- | --- |
//! | [`common`] | ids, hashing, interning, top-k, stats, Zipf, seeding |
//! | [`text`] | normalization, tokenization, distances, n-grams, numerals, abbreviations, typos |
//! | [`synth`] | the synthetic world: catalogs, alias ground truth, pages, intents, query streams |
//! | [`engine`] | inverted index, BM25, top-k search, Search Data `A` |
//! | [`click`] | click models, session simulation, Click Data `L`, click graph, random walks |
//! | [`core`] | **the paper**: surrogates, candidates, IPC/ICR, selection, metrics, matcher |
//! | [`baselines`] | Wikipedia redirects (simulated), random walk, substring, edit distance |
//! | [`obs`] | lock-free counters and histograms, ring logs, Prometheus text rendering |
//!
//! ## Quickstart
//!
//! ```
//! use websyn::prelude::*;
//!
//! // 1. A synthetic world (stand-in for the paper's Bing logs).
//! let mut world = World::build(&WorldConfig::small_movies(20, 7));
//! let events = websyn::synth::queries::generate(
//!     &mut world,
//!     &QueryStreamConfig::small(20_000),
//! );
//!
//! // 2. Simulate five months of search-and-click in miniature.
//! let engine = engine_for_world(&world);
//! let (log, _stats) =
//!     simulate_sessions(&world, &engine, &events, &SessionConfig::default());
//!
//! // 3. Mine synonyms (IPC 4, ICR 0.1 — the paper's thresholds).
//! let u_set: Vec<String> =
//!     world.entities.iter().map(|e| e.canonical_norm.clone()).collect();
//! let search = SearchData::collect(&engine, &u_set, 10);
//! let n_pages = world.pages.len();
//! let ctx = MiningContext::new(u_set, search, log, n_pages);
//! let result = SynonymMiner::default().mine(&ctx);
//!
//! // 4. Evaluate against the exact oracle.
//! let report = evaluate(&result, &ctx, &world);
//! assert!(report.hits > 0);
//!
//! // 5. Match free-form queries to entities.
//! let matcher = EntityMatcher::from_mining(&result, &ctx);
//! let spans = matcher.segment("some user query");
//! # let _ = spans;
//! ```

pub use websyn_baselines as baselines;
pub use websyn_click as click;
pub use websyn_common as common;
pub use websyn_core as core;
pub use websyn_engine as engine;
pub use websyn_obs as obs;
pub use websyn_serve as serve;
pub use websyn_synth as synth;
pub use websyn_text as text;

/// The most commonly used items, for `use websyn::prelude::*`.
pub mod prelude {
    pub use websyn_baselines::{
        BaselineOutput, ClusterBaseline, EditDistanceBaseline, SubstringBaseline, WalkBaseline,
        WikiBaseline,
    };
    pub use websyn_click::session::{engine_for_world, simulate_sessions};
    pub use websyn_click::{ClickGraph, ClickLog, ClickModel, RandomWalk, SessionConfig};
    pub use websyn_common::{EntityId, PageId, QueryId, SeedSequence, SurfaceId};
    pub use websyn_core::{
        evaluate, CompiledDict, EntityMatcher, EvalReport, FuzzyConfig, MatchSpan, MinerConfig,
        MiningContext, MiningResult, SynonymMiner,
    };
    pub use websyn_engine::{SearchData, SearchEngine};
    pub use websyn_serve::{Engine, EngineConfig, ServeConfig, Server, ShardedCache};
    pub use websyn_synth::{QueryStreamConfig, World, WorldConfig};
}

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_resolve() {
        // Compile-time check that the façade covers the workspace.
        fn assert_type<T>() {}
        assert_type::<crate::prelude::MinerConfig>();
        assert_type::<crate::prelude::WorldConfig>();
        assert_type::<crate::prelude::SessionConfig>();
        assert_type::<crate::baselines::BaselineOutput>();
        assert_type::<crate::text::TypoModel>();
        assert_type::<crate::common::Zipf>();
        assert_type::<crate::prelude::CompiledDict>();
        assert_type::<crate::prelude::SurfaceId>();
        assert_type::<crate::text::PhoneticIndex>();
        assert_type::<crate::text::AbbrevIndex>();
        fn assert_source<T: crate::text::CandidateSource>() {}
        assert_source::<crate::text::NgramIndex>();
    }
}
